// Package dist is the coordinator side of distributed preference SQL:
// it connects a coordinator node to the prefserve shard nodes that own
// the hash partitions of sharded tables, reusing the wire client as the
// inter-node transport. The coordinator ships the per-shard preference
// query to each shard (move the preference to the data, not the rows to
// the coordinator), streams the partial skylines back concurrently, and
// the exec layer's gather operator merges them with the dominance-
// filtered partition merge — the network form of the parallel
// partition-merge algebra, sound by the same argument.
//
// Topology is static configuration: `prefserve -shard name=addr`
// (repeatable, in shard order) and `-shard-table table:hashcol` declare
// which nodes exist and which tables are hash-partitioned over them.
// Every node runs the same unmodified prefserve binary; a shard is just
// a server that happens to hold one partition of the rows.
package dist

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro/client"
	"repro/internal/bmo"
	"repro/internal/metrics"
	"repro/internal/plan"
	"repro/internal/value"
)

// Shard is one shard node: a display name (for EXPLAIN, metrics and
// errors) and its wire address.
type Shard struct {
	Name string
	Addr string
}

// ParseShard parses a -shard flag value: "name=host:port", or bare
// "host:port" (the address doubles as the name).
func ParseShard(s string) (Shard, error) {
	name, addr, ok := strings.Cut(s, "=")
	if !ok {
		name, addr = s, s
	}
	if name == "" || addr == "" {
		return Shard{}, fmt.Errorf("dist: invalid shard %q (want name=addr or addr)", s)
	}
	return Shard{Name: name, Addr: addr}, nil
}

// ParseTable parses a -shard-table flag value: "table:hashcol".
func ParseTable(s string) (table, hashCol string, err error) {
	table, hashCol, ok := strings.Cut(s, ":")
	if !ok || table == "" || hashCol == "" {
		return "", "", fmt.Errorf("dist: invalid shard table %q (want table:hashcol)", s)
	}
	return table, hashCol, nil
}

// Per-shard scatter-gather metrics: queries and rows tell how evenly
// the hash partitioning spreads work, nanoseconds/queries gives the
// per-shard mean latency, and errors count failed shard requests.
var (
	mShardSeconds = metrics.Default.Histogram("prefsql_dist_shard_query_seconds",
		"Latency of one shard's portion of a scatter-gather query.")
)

type shardMetrics struct {
	queries *metrics.Counter
	rows    *metrics.Counter
	nanos   *metrics.Counter
	errors  *metrics.Counter
}

func newShardMetrics(name string) shardMetrics {
	l := fmt.Sprintf("shard=%q", name)
	return shardMetrics{
		queries: metrics.Default.CounterL("prefsql_dist_shard_queries_total", l,
			"Scatter-gather statements forwarded to this shard."),
		rows: metrics.Default.CounterL("prefsql_dist_shard_rows_total", l,
			"Partial-result rows streamed back from this shard."),
		nanos: metrics.Default.CounterL("prefsql_dist_shard_nanoseconds_total", l,
			"Total time spent in this shard's streams (divide by queries for the mean)."),
		errors: metrics.Default.CounterL("prefsql_dist_shard_errors_total", l,
			"Failed shard requests (dial, forward, or mid-stream)."),
	}
}

// Transport opens per-shard statement streams over the wire client; it
// implements plan.ShardTransport. Each stream uses its own connection
// (connections are cheap and carry the per-session settings the stream
// needs), dialed with the configured connect+handshake timeout so a
// dead shard fails the statement instead of hanging it.
type Transport struct {
	shards      []Shard
	names       []string
	dialTimeout time.Duration
	sm          []shardMetrics
}

// NewTransport builds a transport over the shard nodes. dialTimeout
// bounds connect+handshake per shard; 0 means no bound beyond ctx.
func NewTransport(shards []Shard, dialTimeout time.Duration) *Transport {
	t := &Transport{shards: shards, dialTimeout: dialTimeout}
	for _, s := range shards {
		t.names = append(t.names, s.Name)
		t.sm = append(t.sm, newShardMetrics(s.Name))
	}
	return t
}

// ShardNames implements plan.ShardTransport.
func (t *Transport) ShardNames() []string { return t.names }

// dial connects to shard i under the transport's dial timeout.
func (t *Transport) dial(ctx context.Context, i int) (*client.Conn, error) {
	dctx := ctx
	if t.dialTimeout > 0 {
		var cancel context.CancelFunc
		dctx, cancel = context.WithTimeout(ctx, t.dialTimeout)
		defer cancel()
	}
	conn, err := client.DialContext(dctx, t.shards[i].Addr)
	if err != nil {
		t.sm[i].errors.Inc()
		return nil, fmt.Errorf("dist: dial shard %s (%s): %w", t.shards[i].Name, t.shards[i].Addr, err)
	}
	return conn, nil
}

// Query implements plan.ShardTransport: it runs sql on shard i and
// returns the row stream. progressive forces the shard session onto the
// sequential SFS algorithm, whose stream emits the local skyline in
// (sum, vec) sort order — the order the coordinator's progressive merge
// requires; batch shapes keep the shard's default algorithm selection.
func (t *Transport) Query(ctx context.Context, i int, sql string, args []value.Value, progressive bool) (plan.ShardStream, error) {
	conn, err := t.dial(ctx, i)
	if err != nil {
		return nil, err
	}
	if progressive {
		if err := conn.SetAlgorithm(bmo.SortFilter); err != nil {
			conn.Close()
			t.sm[i].errors.Inc()
			return nil, fmt.Errorf("dist: shard %s: %w", t.shards[i].Name, err)
		}
	}
	goArgs := make([]any, len(args))
	for j, v := range args {
		goArgs[j] = v
	}
	rows, err := conn.QueryIterContext(ctx, sql, goArgs...)
	if err != nil {
		conn.Close()
		t.sm[i].errors.Inc()
		return nil, fmt.Errorf("dist: shard %s: %w", t.shards[i].Name, err)
	}
	t.sm[i].queries.Inc()
	return &shardStream{conn: conn, rows: rows, sm: t.sm[i], start: time.Now()}, nil
}

// Exec runs sql on shard i and returns the affected-row count (the
// coordinator's INSERT routing and broadcast DML path).
func (t *Transport) Exec(ctx context.Context, i int, sql string, args []value.Value) (int64, error) {
	conn, err := t.dial(ctx, i)
	if err != nil {
		return 0, err
	}
	defer conn.Close()
	goArgs := make([]any, len(args))
	for j, v := range args {
		goArgs[j] = v
	}
	start := time.Now()
	res, err := conn.ExecContext(ctx, sql, goArgs...)
	t.sm[i].queries.Inc()
	t.sm[i].nanos.Add(time.Since(start).Nanoseconds())
	if err != nil {
		t.sm[i].errors.Inc()
		return 0, fmt.Errorf("dist: shard %s: %w", t.shards[i].Name, err)
	}
	return int64(res.Affected), nil
}

// ExecAll broadcasts sql to every shard and sums the affected counts
// (DDL and un-routable DML). Shards execute in order; the first failure
// aborts — the caller surfaces it as the statement's error, and the
// acceptance of partial DDL application matches single-node scripts
// failing mid-statement-list.
func (t *Transport) ExecAll(ctx context.Context, sql string, args []value.Value) (int64, error) {
	var total int64
	for i := range t.shards {
		n, err := t.Exec(ctx, i, sql, args)
		if err != nil {
			return total, err
		}
		total += n
	}
	return total, nil
}

// Coordinator couples the transport with the sharded-table catalog: it
// is the object a coordinator node injects into the core layer (it
// satisfies core's Distributor interface; core cannot import this
// package because the client imports core).
type Coordinator struct {
	t      *Transport
	tables map[string]string // lower(table) → hash column
}

// NewCoordinator builds a coordinator over the shard nodes. tables maps
// each sharded table name to its hash column.
func NewCoordinator(shards []Shard, tables map[string]string, dialTimeout time.Duration) *Coordinator {
	lt := make(map[string]string, len(tables))
	for k, v := range tables {
		lt[strings.ToLower(k)] = v
	}
	return &Coordinator{t: NewTransport(shards, dialTimeout), tables: lt}
}

// Lookup reports whether table is hash-partitioned and over which
// column.
func (c *Coordinator) Lookup(table string) (hashCol string, ok bool) {
	col, ok := c.tables[strings.ToLower(table)]
	return col, ok
}

// Transport exposes the shard transport for gather plans.
func (c *Coordinator) Transport() plan.ShardTransport { return c.t }

// Exec runs sql on one shard.
func (c *Coordinator) Exec(ctx context.Context, shard int, sql string, args []value.Value) (int64, error) {
	return c.t.Exec(ctx, shard, sql, args)
}

// ExecAll broadcasts sql to every shard.
func (c *Coordinator) ExecAll(ctx context.Context, sql string, args []value.Value) (int64, error) {
	return c.t.ExecAll(ctx, sql, args)
}

// shardStream adapts client.Rows to plan.ShardStream, folding the
// shard's per-row and latency metrics in as the stream is consumed.
type shardStream struct {
	conn   *client.Conn
	rows   *client.Rows
	sm     shardMetrics
	start  time.Time
	closed bool
}

func (s *shardStream) Next() (value.Row, bool, error) {
	if s.rows.Next() {
		s.sm.rows.Inc()
		return s.rows.Row(), true, nil
	}
	if err := s.rows.Err(); err != nil {
		s.sm.errors.Inc()
		return nil, false, err
	}
	return nil, false, nil
}

func (s *shardStream) Close() error {
	if s.closed {
		return nil
	}
	s.closed = true
	d := time.Since(s.start)
	s.sm.nanos.Add(d.Nanoseconds())
	mShardSeconds.Observe(d.Seconds())
	s.rows.Close()
	return s.conn.Close()
}
