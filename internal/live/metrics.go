package live

import (
	"time"

	"repro/internal/metrics"
)

// Subscription observability: registered on the process-wide registry
// so /metrics and prefsql's \stats see them without extra wiring.
var (
	mSubsActive = metrics.Default.Gauge("prefsql_live_subscriptions_active",
		"currently registered live subscriptions")
	mSubsTotal = metrics.Default.Counter("prefsql_live_subscriptions_total",
		"subscriptions ever registered")
	mSubsEvicted = metrics.Default.Counter("prefsql_live_evictions_total",
		"subscriptions evicted as slow consumers (bounded queue overflow)")
	mChanges = metrics.Default.Counter("prefsql_live_changes_total",
		"table change events folded into subscription state")
	mCompares = metrics.Default.Counter("prefsql_live_compares_total",
		"preference comparisons spent on incremental maintenance")
	mRequalified = metrics.Default.Counter("prefsql_live_requalified_total",
		"shadow rows promoted back into a skyline after a member left")
	mDeltaAdds = metrics.Default.CounterL("prefsql_live_deltas_total",
		`op="add"`, "deltas produced, by operation")
	mDeltaRemoves = metrics.Default.CounterL("prefsql_live_deltas_total",
		`op="remove"`, "deltas produced, by operation")
	mMaintainSeconds = metrics.Default.Histogram("prefsql_live_maintenance_seconds",
		"time to fold one table change into all subscription state")
	mDeliverSeconds = metrics.Default.Histogram("prefsql_live_delta_latency_seconds",
		"change-capture to delivery latency of one delta")
)

// ObserveDelivery records the change-to-delivery latency of a delta;
// delivery points (the server's fan-out loop, embedded consumers that
// care) call it when the delta is handed to the subscriber.
func ObserveDelivery(d Delta) {
	if !d.Time.IsZero() {
		mDeliverSeconds.ObserveDuration(time.Since(d.Time))
	}
}

// Stats is a point-in-time snapshot of one subscription, surfaced by
// prefsql's \stats and the tests.
type Stats struct {
	ID          uint64
	SQL         string
	Table       string
	Skyline     int
	Shadow      int
	LastSeq     int64
	Adds        int64
	Removes     int64
	Changes     int64
	Compares    int64
	Requalified int64
	Queued      int // deltas waiting in the queue
	QueueCap    int
	Closed      bool
	Err         string
}

// Stats returns the subscription's current counters.
func (s *Subscription) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{
		ID:          s.id,
		SQL:         s.sql,
		Table:       s.table,
		Skyline:     len(s.skyline),
		Shadow:      len(s.shadow),
		LastSeq:     s.seq,
		Adds:        s.adds,
		Removes:     s.removes,
		Changes:     s.changes,
		Compares:    s.compares,
		Requalified: s.requalified,
		Queued:      len(s.ch),
		QueueCap:    cap(s.ch),
		Closed:      s.closed,
	}
	if s.err != nil {
		st.Err = s.err.Error()
	}
	return st
}
