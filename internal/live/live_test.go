package live

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"repro/internal/bmo"
	"repro/internal/preference"
	"repro/internal/storage"
	"repro/internal/value"
)

func ptsTable() *storage.Table {
	return storage.NewTable("pts", storage.Schema{Cols: []storage.Column{
		{Name: "id", Kind: value.Int, PrimaryKey: true, NotNull: true},
		{Name: "x", Kind: value.Float},
		{Name: "y", Kind: value.Float},
	}})
}

func pt(id int64, x, y float64) value.Row {
	return value.Row{value.NewInt(id), value.NewFloat(x), value.NewFloat(y)}
}

func lowlow() preference.Preference {
	get := func(col int) preference.Getter {
		return func(r value.Row) (value.Value, error) { return r[col], nil }
	}
	return &preference.Pareto{Parts: []preference.Preference{
		&preference.Lowest{Get: get(1), Label: "x"},
		&preference.Lowest{Get: get(2), Label: "y"},
	}}
}

func subscribe(t *testing.T, tbl *storage.Table, queue int) *Subscription {
	t.Helper()
	reg := NewRegistry()
	sub, err := reg.Subscribe(Spec{
		SQL:   "SUBSCRIBE SELECT * FROM pts PREFERRING LOWEST(x) AND LOWEST(y)",
		Table: tbl, Columns: []string{"id", "x", "y"},
		Pref: lowlow(), Queue: queue,
	})
	if err != nil {
		t.Fatal(err)
	}
	return sub
}

// apply folds queued deltas into a key-counted multiset state.
func drain(sub *Subscription, state map[string]int) {
	for {
		select {
		case d := <-sub.C():
			if d.Op == OpAdd {
				state[d.Row.Key()]++
			} else {
				state[d.Row.Key()]--
				if state[d.Row.Key()] == 0 {
					delete(state, d.Row.Key())
				}
			}
		default:
			return
		}
	}
}

func canon(state map[string]int) string {
	keys := make([]string, 0, len(state))
	for k, n := range state {
		for i := 0; i < n; i++ {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return strings.Join(keys, "\n")
}

func skylineOf(t *testing.T, p preference.Preference, rows []value.Row) string {
	t.Helper()
	best, err := bmo.Evaluate(p, rows, bmo.Auto)
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]string, len(best))
	for i, r := range best {
		keys[i] = r.Key()
	}
	sort.Strings(keys)
	return strings.Join(keys, "\n")
}

func TestIncrementalMatchesRecompute(t *testing.T) {
	tbl := ptsTable()
	for i := 0; i < 50; i++ {
		if err := tbl.Insert(pt(int64(i), float64(i%10), float64((i*7)%10))); err != nil {
			t.Fatal(err)
		}
	}
	sub := subscribe(t, tbl, 4096)
	defer sub.Close()

	state := map[string]int{}
	for _, r := range sub.Initial() {
		state[r.Key()]++
	}

	rng := rand.New(rand.NewSource(42))
	nextID := int64(1000)
	for op := 0; op < 600; op++ {
		switch rng.Intn(3) {
		case 0:
			nextID++
			if err := tbl.Insert(pt(nextID, rng.Float64()*10, rng.Float64()*10)); err != nil {
				t.Fatal(err)
			}
		case 1:
			target := rng.Int63n(nextID)
			if _, err := tbl.Delete(func(r value.Row) (bool, error) {
				return r[0].I == target, nil
			}); err != nil {
				t.Fatal(err)
			}
		default:
			target := rng.Int63n(nextID)
			nx, ny := rng.Float64()*10, rng.Float64()*10
			if _, err := tbl.Update(
				func(r value.Row) (bool, error) { return r[0].I == target, nil },
				func(r value.Row) (value.Row, error) {
					r[1], r[2] = value.NewFloat(nx), value.NewFloat(ny)
					return r, nil
				},
			); err != nil {
				t.Fatal(err)
			}
		}
		if op%50 == 0 {
			drain(sub, state)
			if got, want := canon(state), skylineOf(t, lowlow(), tbl.Rows()); got != want {
				t.Fatalf("op %d: incremental state diverged\ngot:\n%s\nwant:\n%s", op, got, want)
			}
		}
	}
	drain(sub, state)
	if got, want := canon(state), skylineOf(t, lowlow(), tbl.Rows()); got != want {
		t.Fatalf("final state diverged\ngot:\n%s\nwant:\n%s", got, want)
	}
	if sub.Err() != nil {
		t.Fatalf("subscription died: %v", sub.Err())
	}
	st := sub.Stats()
	if st.Changes == 0 || st.Compares == 0 {
		t.Fatalf("maintenance counters not moving: %+v", st)
	}
}

func TestSeqContiguous(t *testing.T) {
	tbl := ptsTable()
	sub := subscribe(t, tbl, 4096)
	defer sub.Close()
	for i := 0; i < 200; i++ {
		if err := tbl.Insert(pt(int64(i), float64(200-i), float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	want := int64(1)
	for {
		select {
		case d := <-sub.C():
			if d.Seq != want {
				t.Fatalf("seq gap: got %d want %d", d.Seq, want)
			}
			want++
		default:
			if want-1 != sub.LastSeq() {
				t.Fatalf("drained to %d but LastSeq=%d", want-1, sub.LastSeq())
			}
			return
		}
	}
}

func TestSlowConsumerEvicted(t *testing.T) {
	tbl := ptsTable()
	evicted := make(chan struct{})
	reg := NewRegistry()
	sub, err := reg.Subscribe(Spec{
		SQL: "plain", Table: tbl, Columns: []string{"id", "x", "y"},
		Queue:   4, // no preference: every insert is a +row delta
		OnEvict: func() { close(evicted) },
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := tbl.Insert(pt(int64(i), 1, 1)); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case <-evicted:
	default:
		t.Fatal("OnEvict not called")
	}
	if sub.Err() != ErrSlowConsumer {
		t.Fatalf("Err = %v, want ErrSlowConsumer", sub.Err())
	}
	if reg.ActiveCount() != 0 {
		t.Fatalf("evicted subscription still registered")
	}
	// The channel still drains the deltas produced before the overflow,
	// then reports closed.
	n := 0
	for range sub.C() {
		n++
	}
	if n != 4 {
		t.Fatalf("drained %d queued deltas, want 4", n)
	}
	// Writes after eviction must not notify the dead subscription.
	if err := tbl.Insert(pt(99, 1, 1)); err != nil {
		t.Fatal(err)
	}
	if got := sub.Stats().Changes; got != 5 {
		t.Fatalf("changes after eviction = %d, want 5", got)
	}
}

func TestWherePredicateFilters(t *testing.T) {
	tbl := ptsTable()
	reg := NewRegistry()
	sub, err := reg.Subscribe(Spec{
		SQL: "cond", Table: tbl, Columns: []string{"id", "x", "y"},
		Pref: lowlow(),
		Cond: func(r value.Row) (bool, error) { return r[1].F < 5, nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	if err := tbl.Insert(pt(1, 9, 0)); err != nil { // filtered out
		t.Fatal(err)
	}
	if err := tbl.Insert(pt(2, 1, 1)); err != nil {
		t.Fatal(err)
	}
	state := map[string]int{}
	drain(sub, state)
	if len(state) != 1 {
		t.Fatalf("state = %v, want only row 2", state)
	}
	if _, ok := state[pt(2, 1, 1).Key()]; !ok {
		t.Fatalf("missing row 2: %v", state)
	}
}

func TestCloseDetaches(t *testing.T) {
	tbl := ptsTable()
	sub := subscribe(t, tbl, 16)
	sub.Close()
	sub.Close() // idempotent
	if err := tbl.Insert(pt(1, 1, 1)); err != nil {
		t.Fatal(err)
	}
	if _, ok := <-sub.C(); ok {
		t.Fatal("closed subscription produced a delta")
	}
	if sub.Err() != nil {
		t.Fatalf("clean close must leave Err nil, got %v", sub.Err())
	}
}

func TestProjection(t *testing.T) {
	tbl := ptsTable()
	reg := NewRegistry()
	sub, err := reg.Subscribe(Spec{
		SQL: "proj", Table: tbl, Columns: []string{"id"},
		Project: func(r value.Row) (value.Row, error) { return value.Row{r[0]}, nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	if err := tbl.Insert(pt(7, 1, 2)); err != nil {
		t.Fatal(err)
	}
	d := <-sub.C()
	if len(d.Row) != 1 || d.Row[0].I != 7 {
		t.Fatalf("projected delta = %v", d.Row)
	}
	if fmt.Sprint(sub.Columns()) != "[id]" {
		t.Fatalf("columns = %v", sub.Columns())
	}
}
