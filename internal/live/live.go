// Package live implements continuous preference queries: standing
// SUBSCRIBE statements whose Best-Matches-Only result set is maintained
// incrementally under DML, with +row/-row deltas fanned out to
// subscribers.
//
// The maintenance invariant is the dominance-shadow decomposition: every
// live row of the base table that passes the subscription's WHERE clause
// is either in the skyline (the maximal elements under the preference's
// strict partial order) or in the shadow (dominated by at least one
// skyline member — guaranteed to exist by transitivity in a finite
// strict partial order). On INSERT a candidate joins the skyline iff no
// member dominates it, evicting members it dominates into the shadow;
// on DELETE/UPDATE of a skyline member only the shadow is re-qualified
// (rows no skyline member dominates any more are re-evaluated with a
// BMO pass among themselves) — never a from-scratch recompute of the
// whole table on the hot path.
//
// Deltas are delivered through a bounded per-subscription queue. A
// writer never blocks on a subscriber: if the queue is full when a
// delta is produced, the subscription is evicted (ErrSlowConsumer), its
// channel closed, and its OnEvict hook — the server uses it to drop the
// connection — invoked. Maintenance runs synchronously on the writer's
// goroutine, after the storage layer has published the write and
// released the table lock, while the writing statement still holds the
// engine's exclusive statement lock; that lock is what serializes
// maintenance and makes the delta sequence per subscription gap-free.
package live

import (
	"errors"
	"sync"
	"time"

	"repro/internal/bmo"
	"repro/internal/preference"
	"repro/internal/storage"
	"repro/internal/value"
)

// Op is the kind of one delta: a row entering or leaving the result.
type Op int8

// Delta operations.
const (
	OpAdd    Op = 0
	OpRemove Op = 1
)

// String returns "+row" / "-row" style names for diagnostics.
func (o Op) String() string {
	if o == OpAdd {
		return "add"
	}
	return "remove"
}

// Delta is one change to a subscription's result set. Seq is assigned
// under the maintenance lock and is contiguous from 1 per subscription;
// consumers can detect lost or duplicated deltas by checking
// contiguity. Time is the change-capture instant, used for delivery
// latency accounting (see ObserveDelivery).
type Delta struct {
	Seq  int64
	Op   Op
	Row  value.Row
	Time time.Time
}

// Terminal subscription errors, reported by Err after the delta channel
// closes.
var (
	// ErrSlowConsumer means the bounded delta queue overflowed and the
	// subscription was evicted rather than blocking the writer.
	ErrSlowConsumer = errors.New("live: subscription evicted (slow consumer)")
)

// DefaultQueue is the delta-queue capacity used when Spec.Queue is 0.
const DefaultQueue = 1024

// Spec describes a subscription to register. The SQL compilation
// happens in the core layer; live receives the ready-made pieces.
type Spec struct {
	SQL     string
	Table   *storage.Table
	Columns []string // projected column names, for consumers

	// Pref is the compiled preference; nil makes the subscription a
	// plain standing query (every matching row is in the result).
	Pref preference.Preference
	// Cond is the compiled WHERE predicate over base rows; nil accepts
	// every row.
	Cond func(value.Row) (bool, error)
	// Project maps a base row to the emitted row; nil emits the base
	// row unchanged.
	Project func(value.Row) (value.Row, error)

	// Queue is the delta-queue capacity (DefaultQueue when 0).
	Queue int
	// OnEvict, when non-nil, runs once if the subscription is evicted
	// as a slow consumer (after the channel is closed).
	OnEvict func()
}

// entry is one tracked base row with its precomputed identity key and
// projection.
type entry struct {
	row  value.Row
	key  string
	proj value.Row
}

// Registry tracks the active subscriptions of one database.
type Registry struct {
	mu   sync.Mutex
	next uint64
	subs map[uint64]*Subscription
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{subs: map[uint64]*Subscription{}}
}

// Subscription is one standing statement. Consumers read deltas from
// C(); the channel closes when the subscription ends (Close, slow-
// consumer eviction, or a maintenance error), after which Err reports
// why (nil for a clean Close).
type Subscription struct {
	id      uint64
	sql     string
	table   string
	columns []string

	reg     *Registry
	detach  func()
	onEvict func()
	ch      chan Delta

	pref    preference.Preference
	cond    func(value.Row) (bool, error)
	project func(value.Row) (value.Row, error)

	// initial is the projected result frozen at registration; deltas
	// with Seq 1.. apply on top of it.
	initial []value.Row

	mu      sync.Mutex // guards everything below, and sends on / close of ch
	skyline []entry
	shadow  []entry
	seq     int64
	closed  bool
	err     error

	// maintenance-work accounting (under mu)
	changes     int64
	compares    int64
	requalified int64
	adds        int64
	removes     int64
}

// Subscribe registers a new subscription. The caller must exclude
// writers on spec.Table for the duration of the call (the core layer
// holds its statement read lock): the listener attach and the initial
// result scan must see the same table state, which is what makes the
// frozen Initial rows plus the delta stream a consistent view.
func (r *Registry) Subscribe(spec Spec) (*Subscription, error) {
	queue := spec.Queue
	if queue <= 0 {
		queue = DefaultQueue
	}
	s := &Subscription{
		sql:     spec.SQL,
		table:   spec.Table.Name,
		columns: spec.Columns,
		reg:     r,
		onEvict: spec.OnEvict,
		ch:      make(chan Delta, queue),
		pref:    spec.Pref,
		cond:    spec.Cond,
		project: spec.Project,
	}

	// Initial result: filter the current heap, then one BMO pass.
	var matching []value.Row
	for _, row := range spec.Table.Rows() {
		ok, err := s.match(row)
		if err != nil {
			return nil, err
		}
		if ok {
			matching = append(matching, row)
		}
	}
	sky := matching
	if s.pref != nil {
		var err error
		sky, err = bmo.Evaluate(s.pref, matching, bmo.Auto)
		if err != nil {
			return nil, err
		}
	}
	// Decompose matching into skyline and shadow by key multiset: the
	// skyline rows came out of the matching slice, so every skyline key
	// accounts for exactly one matching occurrence.
	inSky := make(map[string]int, len(sky))
	for _, row := range sky {
		e, err := s.newEntry(row)
		if err != nil {
			return nil, err
		}
		s.skyline = append(s.skyline, e)
		inSky[e.key]++
	}
	if s.pref != nil {
		for _, row := range matching {
			k := row.Key()
			if inSky[k] > 0 {
				inSky[k]--
				continue
			}
			e, err := s.newEntry(row)
			if err != nil {
				return nil, err
			}
			s.shadow = append(s.shadow, e)
		}
	}
	s.initial = make([]value.Row, len(s.skyline))
	for i, e := range s.skyline {
		s.initial[i] = e.proj
	}

	r.mu.Lock()
	r.next++
	s.id = r.next
	r.subs[s.id] = s
	r.mu.Unlock()

	s.detach = spec.Table.AddListener(s.onChange)
	mSubsTotal.Inc()
	mSubsActive.Add(1)
	return s, nil
}

// remove unregisters id; it reports whether it was present.
func (r *Registry) remove(id uint64) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.subs[id]; !ok {
		return false
	}
	delete(r.subs, id)
	return true
}

// ActiveCount returns the number of live subscriptions.
func (r *Registry) ActiveCount() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.subs)
}

// Active returns the live subscriptions ordered by id.
func (r *Registry) Active() []*Subscription {
	r.mu.Lock()
	out := make([]*Subscription, 0, len(r.subs))
	for _, s := range r.subs {
		out = append(out, s)
	}
	r.mu.Unlock()
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j-1].id > out[j].id; j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	return out
}

// CloseAll closes every live subscription (database shutdown).
func (r *Registry) CloseAll() {
	for _, s := range r.Active() {
		s.Close()
	}
}

// ID returns the registry-assigned subscription id.
func (s *Subscription) ID() uint64 { return s.id }

// SQL returns the statement text the subscription was created from.
func (s *Subscription) SQL() string { return s.sql }

// Table returns the base table name.
func (s *Subscription) Table() string { return s.table }

// Columns returns the projected column names.
func (s *Subscription) Columns() []string { return s.columns }

// Initial returns the projected result set frozen at registration.
// Deltas from C(), starting at Seq 1, apply on top of these rows.
// Callers must not mutate the returned slice.
func (s *Subscription) Initial() []value.Row { return s.initial }

// C returns the delta channel. It closes when the subscription ends;
// check Err afterwards.
func (s *Subscription) C() <-chan Delta { return s.ch }

// LastSeq returns the sequence number of the most recently produced
// delta (0 before the first). Once writers quiesce, a consumer that has
// applied deltas up to LastSeq has the complete current result.
func (s *Subscription) LastSeq() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seq
}

// Err reports why the subscription ended: nil while it is live and
// after a clean Close, ErrSlowConsumer after an eviction, or the
// maintenance error that killed it.
func (s *Subscription) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Close ends the subscription: the listener is detached, the channel
// closed, and the registry entry dropped. Idempotent.
func (s *Subscription) Close() {
	s.finish(nil)
}

// finish moves the subscription to its terminal state exactly once.
func (s *Subscription) finish(err error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.err = err
	close(s.ch)
	s.mu.Unlock()
	if s.detach != nil {
		s.detach()
	}
	s.reg.remove(s.id)
	mSubsActive.Add(-1)
	if err == ErrSlowConsumer {
		mSubsEvicted.Inc()
		if s.onEvict != nil {
			s.onEvict()
		}
	}
}

// match evaluates the WHERE predicate.
func (s *Subscription) match(row value.Row) (bool, error) {
	if s.cond == nil {
		return true, nil
	}
	return s.cond(row)
}

// newEntry builds the tracked form of a base row.
func (s *Subscription) newEntry(row value.Row) (entry, error) {
	e := entry{row: row, key: row.Key(), proj: row}
	if s.project != nil {
		p, err := s.project(row)
		if err != nil {
			return entry{}, err
		}
		e.proj = p
	}
	return e, nil
}
