package live

import (
	"time"

	"repro/internal/bmo"
	"repro/internal/preference"
	"repro/internal/storage"
	"repro/internal/value"
)

// onChange is the storage ChangeListener: it folds one committed write
// into the skyline/shadow state and emits the resulting deltas. It runs
// on the writer's goroutine with the table lock already released; the
// engine's exclusive statement lock serializes concurrent writers, so
// invocations never overlap for SQL-driven writes. s.mu still guards
// the state because consumers (Close, Stats) run concurrently.
//
// Processing order matters for correctness:
//  1. removals — a removed skyline member emits -row, a removed shadow
//     row vanishes silently;
//  2. re-qualification — only if a skyline member left: shadow rows no
//     current member dominates are BMO'd among themselves and the
//     winners promoted (+row). Transitivity guarantees every other
//     shadow row is still covered by a remaining member;
//  3. additions — a dominated newcomer goes to the shadow; an
//     undominated one joins the skyline (+row), evicting members it
//     dominates into the shadow (-row each).
func (s *Subscription) onChange(ch storage.Change) {
	now := time.Now()
	t0 := now
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.changes++
	mChanges.Inc()

	added, removed := ch.Added, ch.Removed
	if len(added) > 0 && len(added) == len(removed) {
		// UPDATE pairs old/new images in order; identical images are
		// no-ops for any subscription and are skipped wholesale.
		keepA := added[:0:0]
		keepR := removed[:0:0]
		for i := range added {
			if added[i].Key() == removed[i].Key() {
				continue
			}
			keepA = append(keepA, added[i])
			keepR = append(keepR, removed[i])
		}
		added, removed = keepA, keepR
	}

	err := s.applyLocked(added, removed, now)
	evicted := false
	if err == errQueueFull {
		evicted = true
		err = ErrSlowConsumer
	}
	if err != nil {
		// Terminal: either the queue overflowed or the preference /
		// predicate evaluation failed (a from-scratch query over the
		// same data would fail identically). Finish outside s.mu.
		s.closed = true
		s.err = err
		close(s.ch)
		s.mu.Unlock()
		if s.detach != nil {
			s.detach()
		}
		s.reg.remove(s.id)
		mSubsActive.Add(-1)
		if evicted {
			mSubsEvicted.Inc()
			if s.onEvict != nil {
				s.onEvict()
			}
		}
		return
	}
	s.mu.Unlock()
	mMaintainSeconds.ObserveDuration(time.Since(t0))
}

// errQueueFull is the internal sentinel emitLocked returns on overflow.
var errQueueFull = errorString("live: delta queue full")

type errorString string

func (e errorString) Error() string { return string(e) }

// applyLocked folds one batch of added/removed base rows into the
// state. Caller holds s.mu.
func (s *Subscription) applyLocked(added, removed []value.Row, now time.Time) error {
	skylineShrunk := false

	// 1. Removals.
	for _, row := range removed {
		key := row.Key()
		if i := findEntry(s.skyline, key); i >= 0 {
			e := s.skyline[i]
			s.skyline = deleteEntry(s.skyline, i)
			skylineShrunk = true
			if err := s.emitLocked(OpRemove, e.proj, now); err != nil {
				return err
			}
			continue
		}
		if i := findEntry(s.shadow, key); i >= 0 {
			s.shadow = deleteEntry(s.shadow, i)
		}
		// Not tracked: the row never matched the predicate.
	}

	// 2. Re-qualification: only needed when a skyline member left and
	// there are shadow rows it may have been covering.
	if skylineShrunk && len(s.shadow) > 0 && s.pref != nil {
		if err := s.requalifyLocked(now); err != nil {
			return err
		}
	}

	// 3. Additions.
	for _, row := range added {
		ok, err := s.match(row)
		if err != nil {
			return err
		}
		if !ok {
			continue
		}
		e, err := s.newEntry(row)
		if err != nil {
			return err
		}
		if s.pref == nil {
			s.skyline = append(s.skyline, e)
			if err := s.emitLocked(OpAdd, e.proj, now); err != nil {
				return err
			}
			continue
		}
		dominated := false
		var beats []int // skyline positions the newcomer dominates
		for i := range s.skyline {
			ord, err := s.pref.Compare(s.skyline[i].row, e.row)
			s.compares++
			mCompares.Inc()
			if err != nil {
				return err
			}
			if ord == preference.Better {
				dominated = true
				break
			}
			if ord == preference.Worse {
				beats = append(beats, i)
			}
		}
		if dominated {
			s.shadow = append(s.shadow, e)
			continue
		}
		// Evict dominated members back-to-front so positions stay valid.
		for j := len(beats) - 1; j >= 0; j-- {
			i := beats[j]
			ev := s.skyline[i]
			s.skyline = deleteEntry(s.skyline, i)
			s.shadow = append(s.shadow, ev)
			if err := s.emitLocked(OpRemove, ev.proj, now); err != nil {
				return err
			}
		}
		s.skyline = append(s.skyline, e)
		if err := s.emitLocked(OpAdd, e.proj, now); err != nil {
			return err
		}
	}
	return nil
}

// requalifyLocked promotes shadow rows uncovered by the remaining
// skyline: candidates are the shadow entries no current member
// dominates; a BMO pass among the candidates picks the new maximal
// elements. Cost is O(|shadow|·|skyline|) comparisons — the bounded
// re-scan this package trades against tracking exact per-member
// dominance lists.
func (s *Subscription) requalifyLocked(now time.Time) error {
	var candIdx []int
	for i := range s.shadow {
		covered := false
		for j := range s.skyline {
			ord, err := s.pref.Compare(s.skyline[j].row, s.shadow[i].row)
			s.compares++
			mCompares.Inc()
			if err != nil {
				return err
			}
			if ord == preference.Better {
				covered = true
				break
			}
		}
		if !covered {
			candIdx = append(candIdx, i)
		}
	}
	if len(candIdx) == 0 {
		return nil
	}
	cand := make([]value.Row, len(candIdx))
	for i, idx := range candIdx {
		cand[i] = s.shadow[idx].row
	}
	best, err := bmo.Evaluate(s.pref, cand, bmo.Auto)
	if err != nil {
		return err
	}
	promote := make(map[string]int, len(best))
	for _, row := range best {
		promote[row.Key()]++
	}
	// Walk candidates back-to-front so shadow deletions keep indices valid.
	for i := len(candIdx) - 1; i >= 0; i-- {
		idx := candIdx[i]
		e := s.shadow[idx]
		if promote[e.key] == 0 {
			continue
		}
		promote[e.key]--
		s.shadow = deleteEntry(s.shadow, idx)
		s.skyline = append(s.skyline, e)
		s.requalified++
		mRequalified.Inc()
		if err := s.emitLocked(OpAdd, e.proj, now); err != nil {
			return err
		}
	}
	return nil
}

// emitLocked enqueues one delta; it fails with errQueueFull instead of
// blocking when the consumer has fallen behind by a full queue.
func (s *Subscription) emitLocked(op Op, row value.Row, now time.Time) error {
	s.seq++
	d := Delta{Seq: s.seq, Op: op, Row: row, Time: now}
	select {
	case s.ch <- d:
	default:
		return errQueueFull
	}
	if op == OpAdd {
		s.adds++
		mDeltaAdds.Inc()
	} else {
		s.removes++
		mDeltaRemoves.Inc()
	}
	return nil
}

// findEntry locates the first entry with the given key, -1 if absent.
func findEntry(es []entry, key string) int {
	for i := range es {
		if es[i].key == key {
			return i
		}
	}
	return -1
}

// deleteEntry removes position i preserving order (delta determinism is
// nicer to debug when eviction order follows skyline order).
func deleteEntry(es []entry, i int) []entry {
	return append(es[:i], es[i+1:]...)
}
