package preference

import (
	"strings"
	"testing"

	"repro/internal/ast"
	"repro/internal/parser"
	"repro/internal/value"
)

// parsePref extracts the PREFERRING term of a parsed query.
func parsePref(t *testing.T, term string) ast.Pref {
	t.Helper()
	sel, err := parser.ParseSelect("SELECT * FROM t PREFERRING " + term)
	if err != nil {
		t.Fatalf("parse %q: %v", term, err)
	}
	return sel.Preferring
}

// oldtimerBinder binds (ident, color, age) rows.
func oldtimerBinder() *ColBinder {
	return &ColBinder{Cols: []string{"ident", "color", "age"}}
}

func oldtimerRows() []value.Row {
	mk := func(ident, color string, age int64) value.Row {
		return value.Row{value.NewText(ident), value.NewText(color), value.NewInt(age)}
	}
	return []value.Row{
		mk("Maggie", "white", 19),
		mk("Homer", "yellow", 35),
		mk("Selma", "red", 40),
	}
}

func compilePref(t *testing.T, term string) Preference {
	t.Helper()
	reg := NewRegistry()
	p, err := Compile(parsePref(t, term), oldtimerBinder(), reg)
	if err != nil {
		t.Fatalf("compile %q: %v", term, err)
	}
	return p
}

func TestCompileAround(t *testing.T) {
	p := compilePref(t, "age AROUND 40")
	rows := oldtimerRows()
	if o, _ := p.Compare(rows[2], rows[1]); o != Better {
		t.Errorf("Selma (40) should beat Homer (35): %v", o)
	}
	s, ok := p.(Scored)
	if !ok || s.Attr() != "age" {
		t.Errorf("attr: %v", p)
	}
}

func TestCompileBetween(t *testing.T) {
	p := compilePref(t, "age BETWEEN 30, 45")
	s := p.(Scored)
	if sc, _ := s.Score(oldtimerRows()[0]); sc != 11 {
		t.Errorf("Maggie (19) distance to 30: %v", sc)
	}
	if sc, _ := s.Score(oldtimerRows()[1]); sc != 0 {
		t.Errorf("Homer (35) inside: %v", sc)
	}
}

func TestCompileBetweenBadBounds(t *testing.T) {
	_, err := Compile(parsePref(t, "age BETWEEN 45, 30"), oldtimerBinder(), nil)
	if err == nil || !strings.Contains(err.Error(), "out of order") {
		t.Errorf("want bounds error, got %v", err)
	}
}

func TestCompileLowestHighest(t *testing.T) {
	lo := compilePref(t, "LOWEST(age)")
	hi := compilePref(t, "HIGHEST(age)")
	rows := oldtimerRows()
	if o, _ := lo.Compare(rows[0], rows[2]); o != Better {
		t.Error("19 lower than 40")
	}
	if o, _ := hi.Compare(rows[0], rows[2]); o != Worse {
		t.Error("19 not higher than 40")
	}
}

func TestCompilePosNegAndRegistry(t *testing.T) {
	reg := NewRegistry()
	p, err := Compile(parsePref(t, "color IN ('white', 'yellow') AND age AROUND 40"), oldtimerBinder(), reg)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := p.(*Pareto); !ok {
		t.Fatalf("not pareto: %T", p)
	}
	if _, ok := reg.Lookup("color"); !ok {
		t.Error("color not registered")
	}
	if _, ok := reg.Lookup("age"); !ok {
		t.Error("age not registered")
	}
	neg, err := Compile(parsePref(t, "color <> 'red'"), oldtimerBinder(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if s, _ := neg.(Scored).Score(oldtimerRows()[2]); s != 1 {
		t.Error("red is disliked")
	}
}

func TestCompileContains(t *testing.T) {
	p := compilePref(t, "ident CONTAINS ('mag')")
	s := p.(Scored)
	if sc, _ := s.Score(oldtimerRows()[0]); sc != 0 {
		t.Errorf("Maggie contains 'mag' (case-insensitive): %v", sc)
	}
	if sc, _ := s.Score(oldtimerRows()[1]); sc != 1 {
		t.Errorf("Homer misses 'mag': %v", sc)
	}
}

func TestCompileLayered(t *testing.T) {
	p := compilePref(t, "color = 'white' ELSE color = 'yellow'")
	lay, ok := p.(*Layered)
	if !ok || len(lay.Layers) != 2 {
		t.Fatalf("layered: %T", p)
	}
	if s, _ := lay.Score(oldtimerRows()[2]); s != 2 {
		t.Error("red at bottom layer")
	}
}

func TestCompileLayeredRejectsLowest(t *testing.T) {
	_, err := Compile(parsePref(t, "color = 'white' ELSE LOWEST(age)"), oldtimerBinder(), nil)
	if err == nil || !strings.Contains(err.Error(), "perfect match") {
		t.Errorf("want layering error, got %v", err)
	}
}

func TestCompileExplicit(t *testing.T) {
	p := compilePref(t, "EXPLICIT(color, 'white' > 'yellow', 'yellow' > 'red')")
	ex, ok := p.(*Explicit)
	if !ok {
		t.Fatalf("explicit: %T", p)
	}
	rows := oldtimerRows()
	if o, _ := ex.Compare(rows[0], rows[2]); o != Better {
		t.Error("white beats red via closure")
	}
}

func TestCompileExplicitCycle(t *testing.T) {
	_, err := Compile(parsePref(t, "EXPLICIT(color, 'a' > 'b', 'b' > 'a')"), oldtimerBinder(), nil)
	if err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Errorf("want cycle error, got %v", err)
	}
}

func TestCompileBoolCondition(t *testing.T) {
	p := compilePref(t, "age <= 30")
	s := p.(Scored)
	if sc, _ := s.Score(oldtimerRows()[0]); sc != 0 {
		t.Error("Maggie satisfies age <= 30")
	}
	if sc, _ := s.Score(oldtimerRows()[2]); sc != 1 {
		t.Error("Selma violates age <= 30")
	}
}

func TestCompileCascade(t *testing.T) {
	p := compilePref(t, "LOWEST(age) CASCADE color = 'red'")
	if _, ok := p.(*Cascade); !ok {
		t.Fatalf("cascade: %T", p)
	}
}

func TestCompileDateTargets(t *testing.T) {
	// AROUND with a date string target coerces to day numbers.
	b := &ColBinder{Cols: []string{"start_day"}}
	p, err := Compile(parsePref(t, "start_day AROUND '1999/7/3'"), b, nil)
	if err != nil {
		t.Fatal(err)
	}
	d1, _ := value.ParseDate("1999/7/1")
	d2, _ := value.ParseDate("1999/7/4")
	o, err := p.Compare(value.Row{d2}, value.Row{d1})
	if err != nil || o != Better {
		t.Errorf("july 4 closer to july 3 than july 1: %v %v", o, err)
	}
}

func TestCompileErrors(t *testing.T) {
	b := oldtimerBinder()
	bad := []string{
		"nonexistent AROUND 4",      // unknown column
		"age AROUND 'not-a-number'", // non-numeric target
		"color IN (age)",            // non-literal values for ColBinder
	}
	for _, term := range bad {
		if _, err := Compile(parsePref(t, term), b, nil); err == nil {
			t.Errorf("compile %q should fail", term)
		}
	}
}

func TestColBinderCond(t *testing.T) {
	b := oldtimerBinder()
	for _, tt := range []struct {
		cond string
		row  int
		want bool
	}{
		{"age < 30", 0, true},
		{"age < 30", 2, false},
		{"age >= 40", 2, true},
		{"age <= 19", 0, true},
		{"age > 100", 1, false},
	} {
		pref := parsePref(t, tt.cond).(*ast.PrefBool)
		cond, err := b.Cond(pref.Cond)
		if err != nil {
			t.Fatalf("%s: %v", tt.cond, err)
		}
		got, err := cond(oldtimerRows()[tt.row])
		if err != nil || got != tt.want {
			t.Errorf("%s on row %d = %v (%v), want %v", tt.cond, tt.row, got, err, tt.want)
		}
	}
}

func TestColBinderErrors(t *testing.T) {
	b := oldtimerBinder()
	if _, err := b.Getter(&ast.FuncCall{Name: "ABS"}); err == nil {
		t.Error("function getter should fail in ColBinder")
	}
	if _, err := b.Const(&ast.Column{Name: "age"}); err == nil {
		t.Error("column as const should fail")
	}
	if _, err := b.Cond(&ast.IsNull{X: &ast.Column{Name: "age"}}); err == nil {
		t.Error("non-binary cond should fail in ColBinder")
	}
	// getter on short rows errors at evaluation time
	g, err := b.Getter(&ast.Column{Name: "age"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g(value.Row{value.NewText("only-one")}); err == nil {
		t.Error("short row should fail")
	}
}
