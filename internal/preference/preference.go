// Package preference implements the paper's preference model (§2): a
// preference P = (A, <_P) is a strict partial order over tuples, built
// inductively from base preference types (AROUND, BETWEEN, LOWEST, HIGHEST,
// POS, NEG, CONTAINS, EXPLICIT, soft boolean conditions and ELSE-layering)
// with the constructors Pareto accumulation (equal importance, `AND`) and
// cascade (ordered importance, `CASCADE`).
//
// Base preferences other than EXPLICIT are weak orders represented by a
// score function (lower is better); EXPLICIT is a genuine partial order
// given by the transitive closure of its better-than graph. Pareto
// accumulation introduces incomparability between tuples; that is what
// makes the Best-Matches-Only result a Pareto-optimal (skyline) set.
package preference

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/value"
)

// Ordering is the outcome of comparing two tuples under a preference.
type Ordering int8

// Ordering values. Better means the first tuple is preferred.
const (
	Equal Ordering = iota
	Better
	Worse
	Incomparable
)

// String returns a readable name.
func (o Ordering) String() string {
	switch o {
	case Equal:
		return "equal"
	case Better:
		return "better"
	case Worse:
		return "worse"
	case Incomparable:
		return "incomparable"
	}
	return fmt.Sprintf("Ordering(%d)", int8(o))
}

// Flip reverses the direction of an ordering.
func (o Ordering) Flip() Ordering {
	switch o {
	case Better:
		return Worse
	case Worse:
		return Better
	}
	return o
}

// Getter extracts one attribute (or expression) value from a tuple.
type Getter func(value.Row) (value.Value, error)

// Preference is a strict partial order over tuples. Compare(a, b) reports
// whether a is better than, worse than, equal to, or incomparable with b.
type Preference interface {
	Compare(a, b value.Row) (Ordering, error)
	// Describe returns a short human-readable form for diagnostics.
	Describe() string
}

// Scored is a base preference that is a weak order: tuples are ranked by a
// numeric score where lower is better. All built-in base types except
// EXPLICIT are Scored; the SQL rewriter and the quality functions
// (TOP/LEVEL/DISTANCE) rely on scores.
type Scored interface {
	Preference
	// Score returns the tuple's quality; lower is better. NULL attribute
	// values score worst (+Inf).
	Score(row value.Row) (float64, error)
	// Discrete reports whether scores are small integers (levels) rather
	// than continuous distances.
	Discrete() bool
	// HasOptimum reports whether score 0 is the a-priori perfect match
	// (true for AROUND/BETWEEN/POS/...; false for LOWEST/HIGHEST where the
	// optimum depends on the candidate set).
	HasOptimum() bool
	// Attr returns the attribute label used by quality functions.
	Attr() string
}

// Attributed is the provenance side of a preference: it reports which
// relation attributes the preference reads. Every constructor in this
// package implements it; the planner's preference-algebra rewriter uses
// the labels to decide whether a BMO operator may move below a join
// (all attributes on one join input) or must stay above it.
//
// A label is either a column reference in `name` / `qualifier.name`
// form (what the compiler records for column-backed preferences) or an
// arbitrary expression string that deliberately resolves to no schema
// column — the conservative "provenance unknown" signal that refuses
// any pushdown.
type Attributed interface {
	// Attributes returns the attribute labels the preference reads, in
	// no particular order. It never returns an empty slice: a
	// preference with unknown provenance reports its Describe()/Label
	// text, which no schema resolves.
	Attributes() []string
}

// AttributesOf collects the attribute labels of an arbitrary preference
// tree (descending through Pareto and Cascade constructors). ok is
// false when some node does not expose provenance — the caller must
// then treat the whole preference as unsplittable.
func AttributesOf(p Preference) (attrs []string, ok bool) {
	switch x := p.(type) {
	case *Pareto:
		return attrsOfParts(x.Parts)
	case *Cascade:
		return attrsOfParts(x.Parts)
	case Attributed:
		return x.Attributes(), true
	}
	return nil, false
}

func attrsOfParts(parts []Preference) ([]string, bool) {
	var out []string
	for _, part := range parts {
		a, ok := AttributesOf(part)
		if !ok {
			return nil, false
		}
		out = append(out, a...)
	}
	return out, true
}

// attrsOr is the Attributes() body of the column-backed constructors:
// the compiler-recorded provenance when present, otherwise the Label
// (direct constructions conventionally label a preference with the one
// attribute it reads).
func attrsOr(attrs []string, label string) []string {
	if len(attrs) > 0 {
		return attrs
	}
	return []string{label}
}

// SplitParts partitions a constructor's sub-preferences by the join
// input their attributes come from: classify maps an attribute label to
// a side (conventionally 0 = left, 1 = right) or reports that it
// resolves to neither. A part whose attributes all land on one side
// joins that side's list; parts spanning both sides, reading no
// classifiable attribute, or lacking provenance land in mixed — the
// rewriter must keep them (and, for Pareto, the whole residual
// preference) above the join.
func SplitParts(parts []Preference, classify func(attr string) (int, bool)) (sides [2][]Preference, mixed []Preference) {
	for _, part := range parts {
		side, ok := partSide(part, classify)
		if !ok {
			mixed = append(mixed, part)
			continue
		}
		sides[side] = append(sides[side], part)
	}
	return sides, mixed
}

// partSide resolves the single side all of a part's attributes belong
// to; ok is false for unknown provenance or attributes spanning sides.
func partSide(p Preference, classify func(attr string) (int, bool)) (int, bool) {
	attrs, ok := AttributesOf(p)
	if !ok || len(attrs) == 0 {
		return 0, false
	}
	side := -1
	for _, a := range attrs {
		s, ok := classify(a)
		if !ok {
			return 0, false
		}
		if side >= 0 && s != side {
			return 0, false
		}
		side = s
	}
	return side, true
}

// Split partitions the Pareto accumulation's components by join side;
// see SplitParts. The paper's law L7 (splitting a Pareto preference
// over a join) is sound only when mixed is empty.
func (p *Pareto) Split(classify func(attr string) (int, bool)) (sides [2][]Preference, mixed []Preference) {
	return SplitParts(p.Parts, classify)
}

// Split partitions the cascade's stages by join side; see SplitParts.
// Unlike Pareto, a cascade is rewritten stage-wise: only a prefix of
// one-sided stages may move below the join, so callers typically look
// at partSide of Parts[0] — Split is provided for symmetry and
// diagnostics.
func (p *Cascade) Split(classify func(attr string) (int, bool)) (sides [2][]Preference, mixed []Preference) {
	return SplitParts(p.Parts, classify)
}

// compareScores orders two scores as preference outcomes.
func compareScores(a, b float64) Ordering {
	switch {
	case a < b:
		return Better
	case a > b:
		return Worse
	default:
		return Equal
	}
}

// scoreOrInf treats NULL and non-numeric values as the worst score.
func scoreOrInf(v value.Value) (float64, bool) {
	if v.IsNull() {
		return math.Inf(1), false
	}
	return v.Num(), true
}

// ---------------------------------------------------------------------------
// Base preference types (§2.2.1)
// ---------------------------------------------------------------------------

// Around prefers values close to Target ("duration AROUND 14").
type Around struct {
	Get    Getter
	Target float64
	Label  string
	// Attrs is the compiler-recorded provenance: the column references
	// the preference reads (see Attributed). Empty for direct
	// constructions, where Label stands in as the single attribute.
	Attrs []string
}

// Score is |v - target|.
func (p *Around) Score(row value.Row) (float64, error) {
	v, err := p.Get(row)
	if err != nil {
		return 0, err
	}
	n, ok := scoreOrInf(v)
	if !ok {
		return n, nil
	}
	if math.IsNaN(n) {
		return 0, fmt.Errorf("AROUND: non-numeric value %v for %s", v, p.Label)
	}
	return math.Abs(n - p.Target), nil
}

// Compare implements Preference.
func (p *Around) Compare(a, b value.Row) (Ordering, error) { return scoredCompare(p, a, b) }

// Discrete implements Scored.
func (p *Around) Discrete() bool { return false }

// HasOptimum implements Scored.
func (p *Around) HasOptimum() bool { return true }

// Attr implements Scored.
func (p *Around) Attr() string { return p.Label }

// Attributes implements Attributed.
func (p *Around) Attributes() []string { return attrsOr(p.Attrs, p.Label) }

// Describe implements Preference.
func (p *Around) Describe() string { return fmt.Sprintf("%s AROUND %g", p.Label, p.Target) }

// Between prefers values inside [Lo, Hi]; outside, closer to the nearest
// boundary is better.
type Between struct {
	Get    Getter
	Lo, Hi float64
	Label  string
	// Attrs is the compiler-recorded provenance: the column references
	// the preference reads (see Attributed). Empty for direct
	// constructions, where Label stands in as the single attribute.
	Attrs []string
}

// Score is 0 inside the interval, distance to the nearest bound outside.
func (p *Between) Score(row value.Row) (float64, error) {
	v, err := p.Get(row)
	if err != nil {
		return 0, err
	}
	n, ok := scoreOrInf(v)
	if !ok {
		return n, nil
	}
	if math.IsNaN(n) {
		return 0, fmt.Errorf("BETWEEN: non-numeric value %v for %s", v, p.Label)
	}
	switch {
	case n < p.Lo:
		return p.Lo - n, nil
	case n > p.Hi:
		return n - p.Hi, nil
	default:
		return 0, nil
	}
}

// Compare implements Preference.
func (p *Between) Compare(a, b value.Row) (Ordering, error) { return scoredCompare(p, a, b) }

// Discrete implements Scored.
func (p *Between) Discrete() bool { return false }

// HasOptimum implements Scored.
func (p *Between) HasOptimum() bool { return true }

// Attr implements Scored.
func (p *Between) Attr() string { return p.Label }

// Attributes implements Attributed.
func (p *Between) Attributes() []string { return attrsOr(p.Attrs, p.Label) }

// Describe implements Preference.
func (p *Between) Describe() string {
	return fmt.Sprintf("%s BETWEEN [%g, %g]", p.Label, p.Lo, p.Hi)
}

// Lowest prefers minimal values; Highest prefers maximal values.
type Lowest struct {
	Get   Getter
	Label string
	// Attrs is the compiler-recorded provenance: the column references
	// the preference reads (see Attributed). Empty for direct
	// constructions, where Label stands in as the single attribute.
	Attrs []string
}

// Score is the value itself.
func (p *Lowest) Score(row value.Row) (float64, error) {
	v, err := p.Get(row)
	if err != nil {
		return 0, err
	}
	n, ok := scoreOrInf(v)
	if !ok {
		return n, nil
	}
	if math.IsNaN(n) {
		return 0, fmt.Errorf("LOWEST: non-numeric value %v for %s", v, p.Label)
	}
	return n, nil
}

// Compare implements Preference.
func (p *Lowest) Compare(a, b value.Row) (Ordering, error) { return scoredCompare(p, a, b) }

// Discrete implements Scored.
func (p *Lowest) Discrete() bool { return false }

// HasOptimum implements Scored.
func (p *Lowest) HasOptimum() bool { return false }

// Attr implements Scored.
func (p *Lowest) Attr() string { return p.Label }

// Attributes implements Attributed.
func (p *Lowest) Attributes() []string { return attrsOr(p.Attrs, p.Label) }

// Describe implements Preference.
func (p *Lowest) Describe() string { return "LOWEST(" + p.Label + ")" }

// Highest prefers maximal values of the attribute.
type Highest struct {
	Get   Getter
	Label string
	// Attrs is the compiler-recorded provenance: the column references
	// the preference reads (see Attributed). Empty for direct
	// constructions, where Label stands in as the single attribute.
	Attrs []string
}

// Score is the negated value.
func (p *Highest) Score(row value.Row) (float64, error) {
	v, err := p.Get(row)
	if err != nil {
		return 0, err
	}
	n, ok := scoreOrInf(v)
	if !ok {
		return n, nil
	}
	if math.IsNaN(n) {
		return 0, fmt.Errorf("HIGHEST: non-numeric value %v for %s", v, p.Label)
	}
	return -n, nil
}

// Compare implements Preference.
func (p *Highest) Compare(a, b value.Row) (Ordering, error) { return scoredCompare(p, a, b) }

// Discrete implements Scored.
func (p *Highest) Discrete() bool { return false }

// HasOptimum implements Scored.
func (p *Highest) HasOptimum() bool { return false }

// Attr implements Scored.
func (p *Highest) Attr() string { return p.Label }

// Attributes implements Attributed.
func (p *Highest) Attributes() []string { return attrsOr(p.Attrs, p.Label) }

// Describe implements Preference.
func (p *Highest) Describe() string { return "HIGHEST(" + p.Label + ")" }

// Pos prefers values from a favourite set ("exp IN ('java','C++')").
type Pos struct {
	Get   Getter
	Set   map[string]bool // keys via value.Value.Key
	Label string
	// Attrs is the compiler-recorded provenance: the column references
	// the preference reads (see Attributed). Empty for direct
	// constructions, where Label stands in as the single attribute.
	Attrs []string
	Vals  []value.Value // original values, for diagnostics and rewriting
}

// NewSet builds the lookup set for POS/NEG preferences.
func NewSet(vals []value.Value) map[string]bool {
	m := make(map[string]bool, len(vals))
	for _, v := range vals {
		m[v.Key()] = true
	}
	return m
}

// Score is 0 for favourites, 1 otherwise.
func (p *Pos) Score(row value.Row) (float64, error) {
	v, err := p.Get(row)
	if err != nil {
		return 0, err
	}
	if v.IsNull() {
		return math.Inf(1), nil
	}
	if p.Set[v.Key()] {
		return 0, nil
	}
	return 1, nil
}

// Compare implements Preference.
func (p *Pos) Compare(a, b value.Row) (Ordering, error) { return scoredCompare(p, a, b) }

// Discrete implements Scored.
func (p *Pos) Discrete() bool { return true }

// HasOptimum implements Scored.
func (p *Pos) HasOptimum() bool { return true }

// Attr implements Scored.
func (p *Pos) Attr() string { return p.Label }

// Attributes implements Attributed.
func (p *Pos) Attributes() []string { return attrsOr(p.Attrs, p.Label) }

// Describe implements Preference.
func (p *Pos) Describe() string { return fmt.Sprintf("POS(%s, %v)", p.Label, p.Vals) }

// Neg dis-prefers values from a set ("location <> 'downtown'").
type Neg struct {
	Get   Getter
	Set   map[string]bool
	Label string
	// Attrs is the compiler-recorded provenance: the column references
	// the preference reads (see Attributed). Empty for direct
	// constructions, where Label stands in as the single attribute.
	Attrs []string
	Vals  []value.Value
}

// Score is 1 for disliked values, 0 otherwise.
func (p *Neg) Score(row value.Row) (float64, error) {
	v, err := p.Get(row)
	if err != nil {
		return 0, err
	}
	if v.IsNull() {
		return math.Inf(1), nil
	}
	if p.Set[v.Key()] {
		return 1, nil
	}
	return 0, nil
}

// Compare implements Preference.
func (p *Neg) Compare(a, b value.Row) (Ordering, error) { return scoredCompare(p, a, b) }

// Discrete implements Scored.
func (p *Neg) Discrete() bool { return true }

// HasOptimum implements Scored.
func (p *Neg) HasOptimum() bool { return true }

// Attr implements Scored.
func (p *Neg) Attr() string { return p.Label }

// Attributes implements Attributed.
func (p *Neg) Attributes() []string { return attrsOr(p.Attrs, p.Label) }

// Describe implements Preference.
func (p *Neg) Describe() string { return fmt.Sprintf("NEG(%s, %v)", p.Label, p.Vals) }

// Bool treats an arbitrary condition as a soft constraint: satisfied is
// better than not satisfied.
type Bool struct {
	Cond  func(value.Row) (bool, error)
	Label string
	// Attrs is the compiler-recorded provenance: the column references
	// the preference reads (see Attributed). Empty for direct
	// constructions, where Label stands in as the single attribute.
	Attrs []string
}

// Score is 0 when the condition holds, 1 otherwise.
func (p *Bool) Score(row value.Row) (float64, error) {
	ok, err := p.Cond(row)
	if err != nil {
		return 0, err
	}
	if ok {
		return 0, nil
	}
	return 1, nil
}

// Compare implements Preference.
func (p *Bool) Compare(a, b value.Row) (Ordering, error) { return scoredCompare(p, a, b) }

// Discrete implements Scored.
func (p *Bool) Discrete() bool { return true }

// HasOptimum implements Scored.
func (p *Bool) HasOptimum() bool { return true }

// Attr implements Scored.
func (p *Bool) Attr() string { return p.Label }

// Attributes implements Attributed.
func (p *Bool) Attributes() []string { return attrsOr(p.Attrs, p.Label) }

// Describe implements Preference.
func (p *Bool) Describe() string { return "REGULAR(" + p.Label + ")" }

// Contains prefers text containing more of the given terms (simple
// full-text preference, cf. [LeK99]). Matching is case-insensitive.
type Contains struct {
	Get   Getter
	Terms []string
	Label string
	// Attrs is the compiler-recorded provenance: the column references
	// the preference reads (see Attributed). Empty for direct
	// constructions, where Label stands in as the single attribute.
	Attrs []string
}

// Score counts the missing terms: 0 means all terms present.
func (p *Contains) Score(row value.Row) (float64, error) {
	v, err := p.Get(row)
	if err != nil {
		return 0, err
	}
	if v.IsNull() {
		return math.Inf(1), nil
	}
	text := strings.ToLower(v.String())
	missing := 0
	for _, term := range p.Terms {
		if !strings.Contains(text, strings.ToLower(term)) {
			missing++
		}
	}
	return float64(missing), nil
}

// Compare implements Preference.
func (p *Contains) Compare(a, b value.Row) (Ordering, error) { return scoredCompare(p, a, b) }

// Discrete implements Scored.
func (p *Contains) Discrete() bool { return true }

// HasOptimum implements Scored.
func (p *Contains) HasOptimum() bool { return true }

// Attr implements Scored.
func (p *Contains) Attr() string { return p.Label }

// Attributes implements Attributed.
func (p *Contains) Attributes() []string { return attrsOr(p.Attrs, p.Label) }

// Describe implements Preference.
func (p *Contains) Describe() string {
	return fmt.Sprintf("%s CONTAINS %v", p.Label, p.Terms)
}

// Layered is the ELSE constructor (§2.2.1 POS/POS, POS/NEG, ...): the first
// layer whose perfect-match condition holds determines the tuple's level;
// tuples perfect in no layer share the bottom level len(Layers).
//
// Every layer must have an a-priori optimum (HasOptimum); LOWEST/HIGHEST
// cannot be layered because "perfect" is undefined for them.
type Layered struct {
	Layers []Scored
	Label  string
	// Attrs is the compiler-recorded provenance: the column references
	// the preference reads (see Attributed). Empty for direct
	// constructions, where Label stands in as the single attribute.
	Attrs []string
}

// Score is the index of the first perfectly matched layer.
func (p *Layered) Score(row value.Row) (float64, error) {
	for i, layer := range p.Layers {
		s, err := layer.Score(row)
		if err != nil {
			return 0, err
		}
		if s == 0 {
			return float64(i), nil
		}
	}
	return float64(len(p.Layers)), nil
}

// Compare implements Preference.
func (p *Layered) Compare(a, b value.Row) (Ordering, error) { return scoredCompare(p, a, b) }

// Discrete implements Scored.
func (p *Layered) Discrete() bool { return true }

// HasOptimum implements Scored.
func (p *Layered) HasOptimum() bool { return true }

// Attr implements Scored.
func (p *Layered) Attr() string { return p.Label }

// Attributes implements Attributed.
func (p *Layered) Attributes() []string { return attrsOr(p.Attrs, p.Label) }

// Describe implements Preference.
func (p *Layered) Describe() string {
	parts := make([]string, len(p.Layers))
	for i, l := range p.Layers {
		parts[i] = l.Describe()
	}
	return strings.Join(parts, " ELSE ")
}

func scoredCompare(p Scored, a, b value.Row) (Ordering, error) {
	sa, err := p.Score(a)
	if err != nil {
		return Incomparable, err
	}
	sb, err := p.Score(b)
	if err != nil {
		return Incomparable, err
	}
	return compareScores(sa, sb), nil
}

// ---------------------------------------------------------------------------
// EXPLICIT: finite better-than graph (§2.2.1)
// ---------------------------------------------------------------------------

// Explicit is the EXPLICIT base preference: a strict partial order over
// attribute values given as the transitive closure of better-than edges.
// Values not mentioned in the graph form a bottom layer: every mentioned
// value is better than every unmentioned one, and unmentioned values are
// substitutable (Equal) among themselves.
type Explicit struct {
	Get   Getter
	Label string
	// Attrs is the compiler-recorded provenance: the column references
	// the preference reads (see Attributed). Empty for direct
	// constructions, where Label stands in as the single attribute.
	Attrs []string

	closure map[string]map[string]bool // better -> set of worse (transitive)
	depth   map[string]int             // longest path from a top value, for LEVEL
	maxDep  int
}

// NewExplicit builds the preference from better/worse value pairs. It
// rejects graphs with cycles (which would violate irreflexivity).
func NewExplicit(get Getter, label string, edges [][2]value.Value) (*Explicit, error) {
	adj := map[string][]string{}
	nodes := map[string]bool{}
	for _, e := range edges {
		b, w := e[0].Key(), e[1].Key()
		adj[b] = append(adj[b], w)
		nodes[b], nodes[w] = true, true
	}
	// Transitive closure by DFS from each node, with cycle detection.
	closure := make(map[string]map[string]bool, len(nodes))
	for n := range nodes {
		reach := map[string]bool{}
		var stack []string
		stack = append(stack, adj[n]...)
		for len(stack) > 0 {
			top := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if reach[top] {
				continue
			}
			reach[top] = true
			stack = append(stack, adj[top]...)
		}
		if reach[n] {
			return nil, fmt.Errorf("EXPLICIT preference on %s has a cycle involving %s", label, n)
		}
		closure[n] = reach
	}
	// Depth = longest chain of strictly-better predecessors; 0 for maximal
	// values. Computed by repeated relaxation (graphs are tiny).
	depth := map[string]int{}
	maxDep := 0
	for changed := true; changed; {
		changed = false
		for b, ws := range adj {
			for _, w := range ws {
				if d := depth[b] + 1; d > depth[w] {
					depth[w] = d
					if d > maxDep {
						maxDep = d
					}
					changed = true
				}
			}
		}
	}
	return &Explicit{Get: get, Label: label, closure: closure, depth: depth, maxDep: maxDep}, nil
}

// Compare implements Preference using the closure.
func (p *Explicit) Compare(a, b value.Row) (Ordering, error) {
	va, err := p.Get(a)
	if err != nil {
		return Incomparable, err
	}
	vb, err := p.Get(b)
	if err != nil {
		return Incomparable, err
	}
	ka, kb := va.Key(), vb.Key()
	if ka == kb {
		return Equal, nil
	}
	_, aMentioned := p.closure[ka]
	_, bMentioned := p.closure[kb]
	switch {
	case aMentioned && bMentioned:
		if p.closure[ka][kb] {
			return Better, nil
		}
		if p.closure[kb][ka] {
			return Worse, nil
		}
		return Incomparable, nil
	case aMentioned:
		return Better, nil
	case bMentioned:
		return Worse, nil
	default:
		return Equal, nil // both unmentioned: substitutable
	}
}

// Level reports the 1-based quality level of a tuple's value: depth+1 for
// mentioned values, bottom level for unmentioned ones.
func (p *Explicit) Level(row value.Row) (int, error) {
	v, err := p.Get(row)
	if err != nil {
		return 0, err
	}
	k := v.Key()
	if _, ok := p.closure[k]; ok {
		return p.depth[k] + 1, nil
	}
	return p.maxDep + 2, nil
}

// Attr returns the attribute label.
func (p *Explicit) Attr() string { return p.Label }

// Attributes implements Attributed.
func (p *Explicit) Attributes() []string { return attrsOr(p.Attrs, p.Label) }

// Describe implements Preference.
func (p *Explicit) Describe() string { return "EXPLICIT(" + p.Label + ")" }

// ---------------------------------------------------------------------------
// Constructors (§2.2.2)
// ---------------------------------------------------------------------------

// Pareto is Pareto accumulation of equally important preferences: a tuple
// dominates another iff it is equal-or-better in every component and
// strictly better in at least one.
type Pareto struct {
	Parts []Preference
}

// Compare implements Preference (product order).
func (p *Pareto) Compare(a, b value.Row) (Ordering, error) {
	sawBetter, sawWorse := false, false
	for _, part := range p.Parts {
		o, err := part.Compare(a, b)
		if err != nil {
			return Incomparable, err
		}
		switch o {
		case Incomparable:
			return Incomparable, nil
		case Better:
			sawBetter = true
		case Worse:
			sawWorse = true
		}
		if sawBetter && sawWorse {
			return Incomparable, nil
		}
	}
	switch {
	case sawBetter:
		return Better, nil
	case sawWorse:
		return Worse, nil
	default:
		return Equal, nil
	}
}

// Describe implements Preference.
func (p *Pareto) Describe() string {
	parts := make([]string, len(p.Parts))
	for i, q := range p.Parts {
		parts[i] = q.Describe()
	}
	return "(" + strings.Join(parts, " AND ") + ")"
}

// Cascade is ordered importance: earlier preferences dominate later ones.
// Compare is lexicographic; BMO evaluation applies the parts "one after the
// other" (§2.2.2), i.e. BMO(P1 CASCADE P2) = BMO(P2, BMO(P1, R)).
type Cascade struct {
	Parts []Preference
}

// Compare implements Preference (lexicographic composition).
func (p *Cascade) Compare(a, b value.Row) (Ordering, error) {
	for _, part := range p.Parts {
		o, err := part.Compare(a, b)
		if err != nil {
			return Incomparable, err
		}
		if o != Equal {
			return o, nil
		}
	}
	return Equal, nil
}

// Describe implements Preference.
func (p *Cascade) Describe() string {
	parts := make([]string, len(p.Parts))
	for i, q := range p.Parts {
		parts[i] = q.Describe()
	}
	return strings.Join(parts, " CASCADE ")
}

// ---------------------------------------------------------------------------
// Registry of base preferences for quality functions
// ---------------------------------------------------------------------------

// Registry maps attribute labels (normalized lower-case) to the base
// preference applied to them, so that the quality functions TOP(attr),
// LEVEL(attr) and DISTANCE(attr) in the SELECT list and the BUT ONLY clause
// can find "the preference on that attribute".
type Registry struct {
	byAttr map[string]Preference
	order  []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{byAttr: map[string]Preference{}} }

// Add registers a base preference under its attribute label. The first
// registration for a label wins (an attribute rarely appears in two base
// preferences; if it does, quality functions refer to the first).
func (r *Registry) Add(label string, p Preference) {
	key := strings.ToLower(label)
	if _, ok := r.byAttr[key]; ok {
		return
	}
	r.byAttr[key] = p
	r.order = append(r.order, key)
}

// Lookup finds the base preference on an attribute label.
func (r *Registry) Lookup(label string) (Preference, bool) {
	p, ok := r.byAttr[strings.ToLower(label)]
	return p, ok
}

// Labels lists registered attribute labels in registration order.
func (r *Registry) Labels() []string { return r.order }
