package preference

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/ast"
	"repro/internal/value"
)

// Binder connects the preference compiler to a query-processing context:
// it turns expressions into row accessors and evaluates constants. The
// core package implements it over the engine's relations.
type Binder interface {
	// Getter compiles an expression into a per-row accessor.
	Getter(e ast.Expr) (Getter, error)
	// Cond compiles a boolean condition into a per-row predicate.
	Cond(e ast.Expr) (func(value.Row) (bool, error), error)
	// Const evaluates a row-independent expression (preference parameters
	// like the AROUND target or POS value lists).
	Const(e ast.Expr) (value.Value, error)
}

// Compile translates a parsed PREFERRING term into an executable
// Preference, registering every base preference in reg (when non-nil) so
// quality functions can find them.
func Compile(p ast.Pref, b Binder, reg *Registry) (Preference, error) {
	switch x := p.(type) {
	case *ast.PrefAround:
		get, err := b.Getter(x.X)
		if err != nil {
			return nil, err
		}
		target, err := constNumber(b, x.Target, "AROUND target")
		if err != nil {
			return nil, err
		}
		pref := &Around{Get: get, Target: target, Label: x.X.SQL(), Attrs: provenance(x.X)}
		register(reg, pref)
		return pref, nil

	case *ast.PrefBetween:
		get, err := b.Getter(x.X)
		if err != nil {
			return nil, err
		}
		lo, err := constNumber(b, x.Lo, "BETWEEN lower bound")
		if err != nil {
			return nil, err
		}
		hi, err := constNumber(b, x.Hi, "BETWEEN upper bound")
		if err != nil {
			return nil, err
		}
		if lo > hi {
			return nil, fmt.Errorf("BETWEEN bounds out of order: %g > %g", lo, hi)
		}
		pref := &Between{Get: get, Lo: lo, Hi: hi, Label: x.X.SQL(), Attrs: provenance(x.X)}
		register(reg, pref)
		return pref, nil

	case *ast.PrefLowest:
		get, err := b.Getter(x.X)
		if err != nil {
			return nil, err
		}
		pref := &Lowest{Get: get, Label: x.X.SQL(), Attrs: provenance(x.X)}
		register(reg, pref)
		return pref, nil

	case *ast.PrefHighest:
		get, err := b.Getter(x.X)
		if err != nil {
			return nil, err
		}
		pref := &Highest{Get: get, Label: x.X.SQL(), Attrs: provenance(x.X)}
		register(reg, pref)
		return pref, nil

	case *ast.PrefPos:
		get, err := b.Getter(x.X)
		if err != nil {
			return nil, err
		}
		vals, err := constList(b, x.Values)
		if err != nil {
			return nil, err
		}
		pref := &Pos{Get: get, Set: NewSet(vals), Label: x.X.SQL(), Vals: vals, Attrs: provenance(x.X)}
		register(reg, pref)
		return pref, nil

	case *ast.PrefNeg:
		get, err := b.Getter(x.X)
		if err != nil {
			return nil, err
		}
		vals, err := constList(b, x.Values)
		if err != nil {
			return nil, err
		}
		pref := &Neg{Get: get, Set: NewSet(vals), Label: x.X.SQL(), Vals: vals, Attrs: provenance(x.X)}
		register(reg, pref)
		return pref, nil

	case *ast.PrefContains:
		get, err := b.Getter(x.X)
		if err != nil {
			return nil, err
		}
		vals, err := constList(b, x.Terms)
		if err != nil {
			return nil, err
		}
		terms := make([]string, len(vals))
		for i, v := range vals {
			terms[i] = v.String()
		}
		pref := &Contains{Get: get, Terms: terms, Label: x.X.SQL(), Attrs: provenance(x.X)}
		register(reg, pref)
		return pref, nil

	case *ast.PrefBool:
		cond, err := b.Cond(x.Cond)
		if err != nil {
			return nil, err
		}
		pref := &Bool{Cond: cond, Label: x.Cond.SQL(), Attrs: provenance(x.Cond)}
		register(reg, pref)
		return pref, nil

	case *ast.PrefExplicit:
		get, err := b.Getter(x.X)
		if err != nil {
			return nil, err
		}
		edges := make([][2]value.Value, len(x.Edges))
		for i, e := range x.Edges {
			better, err := b.Const(e.Better)
			if err != nil {
				return nil, err
			}
			worse, err := b.Const(e.Worse)
			if err != nil {
				return nil, err
			}
			edges[i] = [2]value.Value{better, worse}
		}
		pref, err := NewExplicit(get, x.X.SQL(), edges)
		if err != nil {
			return nil, err
		}
		pref.Attrs = provenance(x.X)
		register(reg, pref)
		return pref, nil

	case *ast.PrefElse:
		return compileElse(x, b, reg)

	case *ast.PrefPareto:
		parts := make([]Preference, len(x.Parts))
		for i, q := range x.Parts {
			c, err := Compile(q, b, reg)
			if err != nil {
				return nil, err
			}
			parts[i] = c
		}
		return &Pareto{Parts: parts}, nil

	case *ast.PrefCascade:
		parts := make([]Preference, len(x.Parts))
		for i, q := range x.Parts {
			c, err := Compile(q, b, reg)
			if err != nil {
				return nil, err
			}
			parts[i] = c
		}
		return &Cascade{Parts: parts}, nil
	}
	return nil, fmt.Errorf("preference: cannot compile %T", p)
}

// compileElse flattens a chain of ELSE layers into one Layered preference.
func compileElse(e *ast.PrefElse, b Binder, reg *Registry) (Preference, error) {
	var layerNodes []ast.Pref
	var flatten func(p ast.Pref)
	flatten = func(p ast.Pref) {
		if el, ok := p.(*ast.PrefElse); ok {
			flatten(el.First)
			flatten(el.Second)
			return
		}
		layerNodes = append(layerNodes, p)
	}
	flatten(e)

	layers := make([]Scored, len(layerNodes))
	label := ""
	for i, node := range layerNodes {
		// Compile layers without registering them individually: the
		// layered preference as a whole owns the attribute.
		c, err := Compile(node, b, nil)
		if err != nil {
			return nil, err
		}
		s, ok := c.(Scored)
		if !ok {
			return nil, fmt.Errorf("ELSE layers must be score-based base preferences, got %s", c.Describe())
		}
		if !s.HasOptimum() {
			return nil, fmt.Errorf("ELSE cannot layer %s: LOWEST/HIGHEST have no a-priori perfect match", s.Describe())
		}
		if label == "" {
			label = s.Attr()
		}
		layers[i] = s
	}
	pref := &Layered{Layers: layers, Label: label}
	for _, l := range layers {
		if a, ok := AttributesOf(l); ok {
			pref.Attrs = append(pref.Attrs, a...)
		}
	}
	register(reg, pref)
	return pref, nil
}

func register(reg *Registry, p Preference) {
	if reg == nil {
		return
	}
	switch x := p.(type) {
	case Scored:
		reg.Add(x.Attr(), p)
	case *Explicit:
		reg.Add(x.Attr(), p)
	}
}

// provenance lists the column references of an attribute expression in
// the `name` / `qualifier.name` form the pushdown rewriter resolves
// against plan schemas. When the expression embeds a subquery (whose
// column set the compiler cannot see) or reads no column at all, it
// returns the expression's SQL text instead — a label that resolves to
// no schema column, so pushdown is conservatively refused.
func provenance(e ast.Expr) []string {
	cols, opaque := exprColumns(e)
	if opaque || len(cols) == 0 {
		return []string{e.SQL()}
	}
	return cols
}

// exprColumns collects the column references of e; opaque reports a
// subquery or unknown node, which makes the provenance unknowable.
func exprColumns(e ast.Expr) (cols []string, opaque bool) {
	var walk func(ast.Expr)
	walk = func(e ast.Expr) {
		switch x := e.(type) {
		case nil:
		case *ast.Literal, *ast.Star, *ast.Param:
		case *ast.Column:
			if x.Table != "" {
				cols = append(cols, x.Table+"."+x.Name)
			} else {
				cols = append(cols, x.Name)
			}
		case *ast.Unary:
			walk(x.X)
		case *ast.Binary:
			walk(x.L)
			walk(x.R)
		case *ast.IsNull:
			walk(x.X)
		case *ast.InList:
			walk(x.X)
			for _, i := range x.List {
				walk(i)
			}
		case *ast.Between:
			walk(x.X)
			walk(x.Lo)
			walk(x.Hi)
		case *ast.Like:
			walk(x.X)
			walk(x.Pattern)
		case *ast.Case:
			walk(x.Operand)
			for _, w := range x.Whens {
				walk(w.When)
				walk(w.Then)
			}
			walk(x.Else)
		case *ast.FuncCall:
			for _, a := range x.Args {
				walk(a)
			}
		default:
			opaque = true
		}
	}
	walk(e)
	return cols, opaque
}

func constNumber(b Binder, e ast.Expr, what string) (float64, error) {
	v, err := b.Const(e)
	if err != nil {
		return 0, err
	}
	if v.K == value.Text {
		// The paper writes dates as plain strings: AROUND '1999/7/3'.
		if d, derr := value.ParseDate(v.S); derr == nil {
			return d.Num(), nil
		}
	}
	n := v.Num()
	if math.IsNaN(n) {
		return 0, fmt.Errorf("%s must be numeric, got %s", what, v.K)
	}
	return n, nil
}

func constList(b Binder, exprs []ast.Expr) ([]value.Value, error) {
	out := make([]value.Value, len(exprs))
	for i, e := range exprs {
		v, err := b.Const(e)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Standalone binder for single-table rows (tests, simple embedding)
// ---------------------------------------------------------------------------

// ColBinder is a Binder over rows of a fixed column layout. Only bare
// column references and literals are supported; the core package provides
// a full expression binder.
type ColBinder struct {
	Cols []string // column names, position = row index
}

// Getter implements Binder for bare column references.
func (cb *ColBinder) Getter(e ast.Expr) (Getter, error) {
	col, ok := e.(*ast.Column)
	if !ok {
		if lit, isLit := e.(*ast.Literal); isLit {
			v := lit.Val
			return func(value.Row) (value.Value, error) { return v, nil }, nil
		}
		return nil, fmt.Errorf("ColBinder supports only column references, got %s", e.SQL())
	}
	for i, name := range cb.Cols {
		if strings.EqualFold(name, col.Name) {
			idx := i
			return func(r value.Row) (value.Value, error) {
				if idx >= len(r) {
					return value.Value{}, fmt.Errorf("row too short for column %s", name)
				}
				return r[idx], nil
			}, nil
		}
	}
	return nil, fmt.Errorf("unknown column %s", col.Name)
}

// Cond implements Binder for simple comparisons column-op-literal.
func (cb *ColBinder) Cond(e ast.Expr) (func(value.Row) (bool, error), error) {
	bin, ok := e.(*ast.Binary)
	if !ok {
		return nil, fmt.Errorf("ColBinder supports only binary comparisons, got %s", e.SQL())
	}
	get, err := cb.Getter(bin.L)
	if err != nil {
		return nil, err
	}
	rhs, err := cb.Const(bin.R)
	if err != nil {
		return nil, err
	}
	op := bin.Op
	return func(r value.Row) (bool, error) {
		v, err := get(r)
		if err != nil {
			return false, err
		}
		c, ok := value.Compare(v, rhs)
		if !ok {
			return false, nil
		}
		switch op {
		case "=":
			return c == 0, nil
		case "<>":
			return c != 0, nil
		case "<":
			return c < 0, nil
		case "<=":
			return c <= 0, nil
		case ">":
			return c > 0, nil
		case ">=":
			return c >= 0, nil
		}
		return false, fmt.Errorf("unsupported operator %q", op)
	}, nil
}

// Const implements Binder for literal expressions.
func (cb *ColBinder) Const(e ast.Expr) (value.Value, error) {
	lit, ok := e.(*ast.Literal)
	if !ok {
		return value.Value{}, fmt.Errorf("expected literal, got %s", e.SQL())
	}
	return lit.Val, nil
}
