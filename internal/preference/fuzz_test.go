package preference_test

import (
	"strings"
	"testing"

	"repro/internal/parser"
	"repro/internal/preference"
	"repro/internal/value"
)

// FuzzPreferenceCompile feeds arbitrary PREFERRING clauses through
// parse → compile → Compare and asserts the strict-partial-order
// contract every BMO algorithm relies on:
//
//   - irreflexive: Compare(a, a) is Equal — a tuple never beats itself;
//   - antisymmetric/consistent: Compare(a, b) is always the exact flip
//     of Compare(b, a) (Better↔Worse, Equal↔Equal, Incomparable↔
//     Incomparable).
//
// Clauses the compiler rejects (unknown columns, non-literal
// parameters) are fine; panics and contract violations are not.
func FuzzPreferenceCompile(f *testing.F) {
	seeds := []string{
		"a AROUND 14",
		"LOWEST(a) AND HIGHEST(b)",
		"c IN ('x', 'y') ELSE c <> 'z'",
		"a BETWEEN [1, 9] CASCADE LOWEST(b)",
		"EXPLICIT(c, 'x' > 'y', 'y' > 'z') AND b AROUND 3",
		"c CONTAINS ('road', 'ster')",
		"a < 5",
		"(a AROUND 1 AND b AROUND 2) CASCADE c = 'x'",
		"HIGHEST(d) ELSE LOWEST(a)",
		"a AROUND 1e99 AND NOT b IN (1,2)",
	}
	for _, s := range seeds {
		f.Add(s)
	}

	cols := []string{"a", "b", "c", "d"}
	null := value.NewNull()
	rows := []value.Row{
		{value.NewInt(1), value.NewFloat(2.5), value.NewText("x"), value.NewInt(-3)},
		{value.NewInt(1), value.NewFloat(2.5), value.NewText("x"), value.NewInt(-3)}, // duplicate of row 0
		{value.NewInt(9), value.NewFloat(0), value.NewText("y"), value.NewInt(7)},
		{value.NewInt(-4), null, value.NewText("z"), null},
		{null, value.NewFloat(1e18), value.NewText(""), value.NewInt(0)},
		{value.NewInt(14), value.NewFloat(-2.5), value.NewText("road"), value.NewInt(14)},
	}

	f.Fuzz(func(t *testing.T, clause string) {
		if strings.ContainsAny(clause, ";") {
			return // would split the carrier statement
		}
		sel, err := parser.ParseSelect("SELECT * FROM t PREFERRING " + clause)
		if err != nil || sel.Preferring == nil {
			return
		}
		p, err := preference.Compile(sel.Preferring, &preference.ColBinder{Cols: cols}, nil)
		if err != nil {
			return // ColBinder only supports column refs and literals
		}
		for i, a := range rows {
			oa, err := p.Compare(a, a)
			if err != nil {
				return // e.g. AROUND over a text column: error, not a verdict
			}
			if oa != preference.Equal {
				t.Fatalf("Compare(row%d, row%d) = %v, want equal (irreflexivity)\nclause: %s",
					i, i, oa, clause)
			}
			for j, b := range rows {
				ab, err := p.Compare(a, b)
				if err != nil {
					return
				}
				ba, err := p.Compare(b, a)
				if err != nil {
					return
				}
				if ba != ab.Flip() {
					t.Fatalf("Compare(row%d, row%d) = %v but Compare(row%d, row%d) = %v (want %v)\nclause: %s",
						i, j, ab, j, i, ba, ab.Flip(), clause)
				}
			}
		}
	})
}
