package preference

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/value"
)

func colGetter(i int) Getter {
	return func(r value.Row) (value.Value, error) { return r[i], nil }
}

func row(vals ...any) value.Row {
	out := make(value.Row, len(vals))
	for i, v := range vals {
		switch x := v.(type) {
		case int:
			out[i] = value.NewInt(int64(x))
		case float64:
			out[i] = value.NewFloat(x)
		case string:
			out[i] = value.NewText(x)
		case nil:
			out[i] = value.NewNull()
		default:
			panic("bad test value")
		}
	}
	return out
}

func mustCompare(t *testing.T, p Preference, a, b value.Row) Ordering {
	t.Helper()
	o, err := p.Compare(a, b)
	if err != nil {
		t.Fatalf("compare: %v", err)
	}
	return o
}

func TestAround(t *testing.T) {
	p := &Around{Get: colGetter(0), Target: 14, Label: "duration"}
	if o := mustCompare(t, p, row(14), row(13)); o != Better {
		t.Errorf("14 vs 13: %v", o)
	}
	if o := mustCompare(t, p, row(12), row(16)); o != Equal {
		t.Errorf("12 vs 16 both distance 2: %v", o)
	}
	if o := mustCompare(t, p, row(20), row(15)); o != Worse {
		t.Errorf("20 vs 15: %v", o)
	}
	s, err := p.Score(row(nil))
	if err != nil || !math.IsInf(s, 1) {
		t.Errorf("null score: %v %v", s, err)
	}
	if _, err := p.Score(row("abc")); err == nil {
		t.Error("text in AROUND should error")
	}
}

func TestBetween(t *testing.T) {
	p := &Between{Get: colGetter(0), Lo: 10, Hi: 20, Label: "x"}
	for _, v := range []int{10, 15, 20} {
		if s, _ := p.Score(row(v)); s != 0 {
			t.Errorf("score(%d) = %v, want 0", v, s)
		}
	}
	if s, _ := p.Score(row(8)); s != 2 {
		t.Errorf("score(8) = %v", s)
	}
	if s, _ := p.Score(row(25)); s != 5 {
		t.Errorf("score(25) = %v", s)
	}
}

func TestLowestHighest(t *testing.T) {
	lo := &Lowest{Get: colGetter(0), Label: "mileage"}
	hi := &Highest{Get: colGetter(0), Label: "power"}
	if o := mustCompare(t, lo, row(10), row(20)); o != Better {
		t.Errorf("lowest: %v", o)
	}
	if o := mustCompare(t, hi, row(10), row(20)); o != Worse {
		t.Errorf("highest: %v", o)
	}
	if lo.HasOptimum() || hi.HasOptimum() {
		t.Error("LOWEST/HIGHEST have no a-priori optimum")
	}
}

func TestPosNeg(t *testing.T) {
	pos := &Pos{Get: colGetter(0), Set: NewSet([]value.Value{value.NewText("java"), value.NewText("C++")}), Label: "exp"}
	if o := mustCompare(t, pos, row("java"), row("cobol")); o != Better {
		t.Error("java should beat cobol")
	}
	if o := mustCompare(t, pos, row("java"), row("C++")); o != Equal {
		t.Error("both favourites are equal")
	}
	if o := mustCompare(t, pos, row("cobol"), row("perl")); o != Equal {
		t.Error("both non-favourites are equal")
	}
	neg := &Neg{Get: colGetter(0), Set: NewSet([]value.Value{value.NewText("downtown")}), Label: "location"}
	if o := mustCompare(t, neg, row("suburb"), row("downtown")); o != Better {
		t.Error("suburb should beat downtown")
	}
	if s, _ := pos.Score(row(nil)); !math.IsInf(s, 1) {
		t.Error("null scores worst")
	}
}

func TestBoolPreference(t *testing.T) {
	p := &Bool{Cond: func(r value.Row) (bool, error) { return r[0].Num() < 500, nil }, Label: "price < 500"}
	if o := mustCompare(t, p, row(400), row(600)); o != Better {
		t.Error("satisfying row should win")
	}
	if o := mustCompare(t, p, row(100), row(499)); o != Equal {
		t.Error("both satisfy")
	}
}

func TestContains(t *testing.T) {
	p := &Contains{Get: colGetter(0), Terms: []string{"database", "preference"}, Label: "body"}
	full := row("a PREFERENCE paper about Database systems")
	half := row("a database paper")
	none := row("cooking recipes")
	if o := mustCompare(t, p, full, half); o != Better {
		t.Error("2 terms beats 1")
	}
	if o := mustCompare(t, p, half, none); o != Better {
		t.Error("1 term beats 0")
	}
	if s, _ := p.Score(full); s != 0 {
		t.Errorf("full match score %v", s)
	}
}

// §2.2.3: color = 'white' ELSE color = 'yellow' gives levels white=0,
// yellow=1, others=2 (LEVEL reports 1-based).
func TestLayeredPosPos(t *testing.T) {
	white := &Pos{Get: colGetter(0), Set: NewSet([]value.Value{value.NewText("white")}), Label: "color"}
	yellow := &Pos{Get: colGetter(0), Set: NewSet([]value.Value{value.NewText("yellow")}), Label: "color"}
	p := &Layered{Layers: []Scored{white, yellow}, Label: "color"}
	for _, tt := range []struct {
		color string
		score float64
	}{{"white", 0}, {"yellow", 1}, {"red", 2}, {"green", 2}} {
		if s, _ := p.Score(row(tt.color)); s != tt.score {
			t.Errorf("score(%s) = %v, want %v", tt.color, s, tt.score)
		}
	}
	if o := mustCompare(t, p, row("white"), row("yellow")); o != Better {
		t.Error("white beats yellow")
	}
	if o := mustCompare(t, p, row("red"), row("green")); o != Equal {
		t.Error("red and green substitutable")
	}
}

// The paper's POS/NEG layering: roadster ELSE NOT passenger.
func TestLayeredPosNeg(t *testing.T) {
	roadster := &Pos{Get: colGetter(0), Set: NewSet([]value.Value{value.NewText("roadster")}), Label: "category"}
	notPassenger := &Neg{Get: colGetter(0), Set: NewSet([]value.Value{value.NewText("passenger")}), Label: "category"}
	p := &Layered{Layers: []Scored{roadster, notPassenger}, Label: "category"}
	if s, _ := p.Score(row("roadster")); s != 0 {
		t.Error("roadster is perfect")
	}
	if s, _ := p.Score(row("suv")); s != 1 {
		t.Error("suv is acceptable")
	}
	if s, _ := p.Score(row("passenger")); s != 2 {
		t.Error("passenger is worst")
	}
}

func TestExplicit(t *testing.T) {
	p, err := NewExplicit(colGetter(0), "color", [][2]value.Value{
		{value.NewText("red"), value.NewText("blue")},
		{value.NewText("blue"), value.NewText("green")},
		{value.NewText("yellow"), value.NewText("green")},
	})
	if err != nil {
		t.Fatal(err)
	}
	// transitivity through closure: red > green
	if o := mustCompare(t, p, row("red"), row("green")); o != Better {
		t.Error("red beats green transitively")
	}
	// red and yellow are on different chains: incomparable
	if o := mustCompare(t, p, row("red"), row("yellow")); o != Incomparable {
		t.Error("red vs yellow incomparable")
	}
	// mentioned beats unmentioned
	if o := mustCompare(t, p, row("green"), row("purple")); o != Better {
		t.Error("mentioned green beats unmentioned purple")
	}
	// unmentioned are substitutable
	if o := mustCompare(t, p, row("purple"), row("black")); o != Equal {
		t.Error("unmentioned equal")
	}
	// same value is equal
	if o := mustCompare(t, p, row("red"), row("red")); o != Equal {
		t.Error("reflexive equality")
	}
	// levels: red/yellow=1, blue=2, green=3, purple=4
	for _, tt := range []struct {
		color string
		level int
	}{{"red", 1}, {"yellow", 1}, {"blue", 2}, {"green", 3}, {"purple", 4}} {
		l, err := p.Level(row(tt.color))
		if err != nil || l != tt.level {
			t.Errorf("level(%s) = %d, want %d", tt.color, l, tt.level)
		}
	}
}

func TestExplicitRejectsCycle(t *testing.T) {
	_, err := NewExplicit(colGetter(0), "c", [][2]value.Value{
		{value.NewText("a"), value.NewText("b")},
		{value.NewText("b"), value.NewText("a")},
	})
	if err == nil {
		t.Fatal("cycle should be rejected")
	}
}

func TestParetoDominance(t *testing.T) {
	mem := &Highest{Get: colGetter(0), Label: "main_memory"}
	cpu := &Highest{Get: colGetter(1), Label: "cpu_speed"}
	p := &Pareto{Parts: []Preference{mem, cpu}}

	if o := mustCompare(t, p, row(512, 3000), row(256, 2000)); o != Better {
		t.Error("dominating in both")
	}
	if o := mustCompare(t, p, row(512, 2000), row(256, 2000)); o != Better {
		t.Error("better in one, equal in other")
	}
	if o := mustCompare(t, p, row(512, 1000), row(256, 2000)); o != Incomparable {
		t.Error("trade-off is incomparable")
	}
	if o := mustCompare(t, p, row(512, 2000), row(512, 2000)); o != Equal {
		t.Error("identical vectors equal")
	}
	if o := mustCompare(t, p, row(256, 1000), row(512, 2000)); o != Worse {
		t.Error("dominated in both")
	}
}

func TestCascadeLexicographic(t *testing.T) {
	mem := &Highest{Get: colGetter(0), Label: "main_memory"}
	color := &Pos{Get: colGetter(1), Set: NewSet([]value.Value{value.NewText("black")}), Label: "color"}
	p := &Cascade{Parts: []Preference{mem, color}}

	// memory decides first
	if o := mustCompare(t, p, row(512, "pink"), row(256, "black")); o != Better {
		t.Error("memory dominates color")
	}
	// equal memory: color decides
	if o := mustCompare(t, p, row(512, "black"), row(512, "pink")); o != Better {
		t.Error("color breaks ties")
	}
	if o := mustCompare(t, p, row(512, "pink"), row(512, "red")); o != Equal {
		t.Error("both non-black equal")
	}
}

func TestOrderingFlipAndString(t *testing.T) {
	if Better.Flip() != Worse || Worse.Flip() != Better || Equal.Flip() != Equal || Incomparable.Flip() != Incomparable {
		t.Error("flip")
	}
	for _, o := range []Ordering{Equal, Better, Worse, Incomparable} {
		if o.String() == "" {
			t.Error("empty string")
		}
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	p1 := &Lowest{Get: colGetter(0), Label: "price"}
	p2 := &Highest{Get: colGetter(1), Label: "power"}
	r.Add("price", p1)
	r.Add("power", p2)
	r.Add("PRICE", p2) // first registration wins
	got, ok := r.Lookup("Price")
	if !ok || got != Preference(p1) {
		t.Error("lookup should be case-insensitive and first-wins")
	}
	if len(r.Labels()) != 2 {
		t.Errorf("labels: %v", r.Labels())
	}
	if _, ok := r.Lookup("nope"); ok {
		t.Error("missing lookup")
	}
}

// --- property tests: strict partial order axioms ---------------------------

// randomPreference builds a random preference tree over rows of width 4
// (cols: float, float, string-color, string-category).
func randomPreference(rng *rand.Rand, depth int) Preference {
	colors := []value.Value{value.NewText("red"), value.NewText("blue"), value.NewText("green")}
	if depth <= 0 || rng.Intn(3) == 0 {
		switch rng.Intn(6) {
		case 0:
			return &Around{Get: colGetter(0), Target: float64(rng.Intn(20)), Label: "a"}
		case 1:
			return &Lowest{Get: colGetter(1), Label: "b"}
		case 2:
			return &Highest{Get: colGetter(0), Label: "a"}
		case 3:
			return &Pos{Get: colGetter(2), Set: NewSet(colors[:1+rng.Intn(2)]), Label: "c"}
		case 4:
			return &Neg{Get: colGetter(3), Set: NewSet(colors[:1]), Label: "d"}
		default:
			p, _ := NewExplicit(colGetter(2), "c", [][2]value.Value{
				{colors[0], colors[1]}, {colors[1], colors[2]},
			})
			return p
		}
	}
	n := 2 + rng.Intn(2)
	parts := make([]Preference, n)
	for i := range parts {
		parts[i] = randomPreference(rng, depth-1)
	}
	if rng.Intn(2) == 0 {
		return &Pareto{Parts: parts}
	}
	return &Cascade{Parts: parts}
}

func randomRow(rng *rand.Rand) value.Row {
	colors := []string{"red", "blue", "green", "purple"}
	return row(rng.Intn(10), float64(rng.Intn(10)), colors[rng.Intn(4)], colors[rng.Intn(4)])
}

// TestStrictPartialOrderAxioms checks irreflexivity, asymmetry and
// transitivity on thousands of random (preference, tuple-triple) draws.
func TestStrictPartialOrderAxioms(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 2000; iter++ {
		p := randomPreference(rng, 2)
		a, b, c := randomRow(rng), randomRow(rng), randomRow(rng)

		// Irreflexivity: a never better than itself.
		if o := mustCompare(t, p, a, a); o == Better || o == Worse {
			t.Fatalf("iter %d: %s not irreflexive on %v: %v", iter, p.Describe(), a, o)
		}
		// Asymmetry: Compare(a,b) is the flip of Compare(b,a).
		oab := mustCompare(t, p, a, b)
		oba := mustCompare(t, p, b, a)
		if oab != oba.Flip() {
			t.Fatalf("iter %d: %s asymmetry violated: %v vs %v", iter, p.Describe(), oab, oba)
		}
		// Transitivity: a>b and b>c implies a>c.
		obc := mustCompare(t, p, b, c)
		if oab == Better && obc == Better {
			if oac := mustCompare(t, p, a, c); oac != Better {
				t.Fatalf("iter %d: %s transitivity violated: a>b>c but a?c = %v", iter, p.Describe(), oac)
			}
		}
		// Equality is transitive with dominance: a>b, b=c implies a>c.
		if oab == Better && obc == Equal {
			if oac := mustCompare(t, p, a, c); oac != Better {
				t.Fatalf("iter %d: %s substitutability violated: a>b=c but a?c = %v", iter, p.Describe(), oac)
			}
		}
	}
}
