package preference

import (
	"reflect"
	"sort"
	"testing"

	"repro/internal/ast"
	"repro/internal/value"
)

// compileAttrs compiles a PREFERRING term over the oldtimer schema and
// returns its sorted attribute labels.
func compileAttrs(t *testing.T, term string) ([]string, bool) {
	t.Helper()
	p := compilePref(t, term)
	attrs, ok := AttributesOf(p)
	sort.Strings(attrs)
	return attrs, ok
}

// TestCompiledProvenance pins the attribute labels the compiler records:
// plain columns by name, expressions by their column set, and opaque
// shapes (no column at all) by a label that resolves nowhere.
func TestCompiledProvenance(t *testing.T) {
	cases := []struct {
		term string
		want []string
	}{
		{`LOWEST(age)`, []string{"age"}},
		{`age AROUND 30`, []string{"age"}},
		{`color IN ('red')`, []string{"color"}},
		{`LOWEST(age) AND color IN ('red')`, []string{"age", "color"}},
		{`LOWEST(age) CASCADE HIGHEST(age)`, []string{"age", "age"}},
		{`age < 30`, []string{"age"}}, // soft condition: column of the predicate
	}
	for _, tc := range cases {
		got, ok := compileAttrs(t, tc.term)
		if !ok {
			t.Errorf("%s: provenance unexpectedly unknown", tc.term)
			continue
		}
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("%s: attributes = %v, want %v", tc.term, got, tc.want)
		}
	}
}

// TestProvenanceExpressions pins the collector on shapes the simple
// ColBinder cannot compile: multi-column expressions list every column
// (qualified ones in qualifier.name form), and expressions reading no
// column report their SQL text — a label no schema resolves, so the
// rewriter refuses pushdown.
func TestProvenanceExpressions(t *testing.T) {
	cases := []struct {
		term string // full PREFERRING term; provenance of its first expr
		want []string
	}{
		{`LOWEST(age + price)`, []string{"age", "price"}},
		{`LOWEST(l.age)`, []string{"l.age"}},
		{`LOWEST(1 + 2)`, []string{"(1 + 2)"}},
	}
	for _, tc := range cases {
		sel := parsePref(t, tc.term)
		var got []string
		switch x := sel.(type) {
		case *ast.PrefLowest:
			got = provenance(x.X)
		default:
			t.Fatalf("%s: unexpected pref node %T", tc.term, sel)
		}
		sort.Strings(got)
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("%s: provenance = %v, want %v", tc.term, got, tc.want)
		}
	}
}

// TestDirectConstructionFallback pins the Label fallback: a hand-built
// preference without compiler provenance reports its label.
func TestDirectConstructionFallback(t *testing.T) {
	p := &Lowest{Get: func(r value.Row) (value.Value, error) { return r[0], nil }, Label: "age"}
	if got, ok := AttributesOf(p); !ok || len(got) != 1 || got[0] != "age" {
		t.Fatalf("AttributesOf = %v, %v; want [age], true", got, ok)
	}
}

// TestSplitParts pins the side partitioning the join rewriter relies on.
func TestSplitParts(t *testing.T) {
	classify := func(attr string) (int, bool) {
		switch attr {
		case "age", "color":
			return 0, true
		case "e1":
			return 1, true
		}
		return 0, false
	}
	left := compilePref(t, `LOWEST(age)`)
	right := &Highest{Get: func(r value.Row) (value.Value, error) { return r[0], nil }, Label: "e1"}
	spanning := &Bool{
		Cond:  func(value.Row) (bool, error) { return true, nil },
		Label: "age-vs-e1",
		Attrs: []string{"age", "e1"},
	}
	unknown := &Lowest{Get: func(r value.Row) (value.Value, error) { return r[0], nil }, Label: "nope"}

	par := &Pareto{Parts: []Preference{left, right, spanning, unknown}}
	sides, mixed := par.Split(classify)
	if len(sides[0]) != 1 || sides[0][0] != left {
		t.Errorf("left side = %v", sides[0])
	}
	if len(sides[1]) != 1 || sides[1][0] != Preference(right) {
		t.Errorf("right side = %v", sides[1])
	}
	if len(mixed) != 2 {
		t.Errorf("mixed = %d parts, want 2 (spanning + unknown provenance)", len(mixed))
	}
}
