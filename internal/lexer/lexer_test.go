package lexer

import (
	"strings"
	"testing"
)

func scan(t *testing.T, src string) []Token {
	t.Helper()
	toks, err := New(src).All()
	if err != nil {
		t.Fatalf("lex %q: %v", src, err)
	}
	return toks
}

func texts(toks []Token) []string {
	var out []string
	for _, tk := range toks {
		if tk.Type == EOF {
			break
		}
		out = append(out, tk.Text)
	}
	return out
}

func TestBasicSelect(t *testing.T) {
	toks := scan(t, "SELECT * FROM trips PREFERRING duration AROUND 14;")
	want := []string{"SELECT", "*", "FROM", "trips", "PREFERRING", "duration", "AROUND", "14", ";"}
	got := texts(toks)
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Errorf("got %v want %v", got, want)
	}
}

func TestKeywordCaseInsensitive(t *testing.T) {
	toks := scan(t, "select Preferring CaScAdE")
	for i, want := range []string{"SELECT", "PREFERRING", "CASCADE"} {
		if toks[i].Type != Keyword || toks[i].Text != want {
			t.Errorf("token %d = %v %q, want keyword %q", i, toks[i].Type, toks[i].Text, want)
		}
	}
}

func TestIdentifiersKeepCase(t *testing.T) {
	toks := scan(t, "main_memory CpuSpeed")
	if toks[0].Text != "main_memory" || toks[1].Text != "CpuSpeed" {
		t.Errorf("idents mangled: %v", texts(toks))
	}
	if toks[0].Type != Ident || toks[1].Type != Ident {
		t.Errorf("wrong types")
	}
}

func TestStringLiterals(t *testing.T) {
	toks := scan(t, "'java' 'O''Brien' ''")
	if toks[0].Text != "java" || toks[1].Text != "O'Brien" || toks[2].Text != "" {
		t.Errorf("strings: %q %q %q", toks[0].Text, toks[1].Text, toks[2].Text)
	}
	for i := 0; i < 3; i++ {
		if toks[i].Type != String {
			t.Errorf("token %d not a string", i)
		}
	}
}

func TestUnterminatedString(t *testing.T) {
	if _, err := New("'oops").All(); err == nil {
		t.Error("unterminated string should error")
	}
}

func TestNumbers(t *testing.T) {
	toks := scan(t, "42 3.14 .5 1e3 2.5E-2 7.")
	want := []string{"42", "3.14", ".5", "1e3", "2.5E-2", "7."}
	for i, w := range want {
		if toks[i].Type != Number || toks[i].Text != w {
			t.Errorf("number %d = %v %q, want %q", i, toks[i].Type, toks[i].Text, w)
		}
	}
}

func TestOperators(t *testing.T) {
	toks := scan(t, "<> != <= >= = < > ( ) , ; [ ] + - * / .")
	want := []string{"<>", "<>", "<=", ">=", "=", "<", ">", "(", ")", ",", ";", "[", "]", "+", "-", "*", "/", "."}
	got := texts(toks)
	if strings.Join(got, "|") != strings.Join(want, "|") {
		t.Errorf("ops: got %v want %v", got, want)
	}
}

func TestComments(t *testing.T) {
	toks := scan(t, "SELECT -- line comment\n 1 /* block\ncomment */ , 2")
	got := texts(toks)
	want := []string{"SELECT", "1", ",", "2"}
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Errorf("got %v", got)
	}
}

func TestUnterminatedBlockCommentIsEOF(t *testing.T) {
	toks := scan(t, "1 /* never ends")
	if len(texts(toks)) != 1 {
		t.Errorf("got %v", texts(toks))
	}
}

func TestQuotedIdentifier(t *testing.T) {
	toks := scan(t, `"order" "Weird Name"`)
	if toks[0].Type != Ident || toks[0].Text != "order" {
		t.Errorf("quoted ident: %v %q", toks[0].Type, toks[0].Text)
	}
	if toks[1].Text != "Weird Name" {
		t.Errorf("quoted ident: %q", toks[1].Text)
	}
}

func TestUnexpectedChar(t *testing.T) {
	if _, err := New("SELECT @").All(); err == nil {
		t.Error("@ should be a lexical error")
	}
	var e *Error
	_, err := New("@").All()
	if err == nil {
		t.Fatal("want error")
	}
	if !strings.Contains(err.Error(), "offset 0") {
		t.Errorf("error lacks position: %v", err)
	}
	_ = e
}

func TestPositions(t *testing.T) {
	toks := scan(t, "SELECT x")
	if toks[0].Pos != 0 || toks[1].Pos != 7 {
		t.Errorf("positions: %d %d", toks[0].Pos, toks[1].Pos)
	}
}

func TestPreferenceKeywords(t *testing.T) {
	for _, kw := range []string{"PREFERRING", "GROUPING", "BUT", "ONLY", "CASCADE", "AROUND", "LOWEST", "HIGHEST", "POS", "NEG", "CONTAINS", "EXPLICIT", "TOP", "LEVEL", "DISTANCE"} {
		if !IsKeyword(kw) {
			t.Errorf("%s should be a keyword", kw)
		}
	}
	if IsKeyword("duration") {
		t.Error("duration must not be a keyword")
	}
}

func TestPaperQueryLexes(t *testing.T) {
	src := `SELECT * FROM car WHERE make = 'Opel'
PREFERRING (category = 'roadster' ELSE category <> 'passenger' AND
price AROUND 40000 AND HIGHEST(power))
CASCADE color = 'red' CASCADE LOWEST(mileage);`
	toks := scan(t, src)
	if len(toks) < 30 {
		t.Errorf("too few tokens: %d", len(toks))
	}
}
