// Package lexer tokenizes Preference SQL source text: the SQL92 subset the
// engine supports plus the preference extensions of the paper (PREFERRING,
// GROUPING, BUT ONLY, CASCADE, AROUND, LOWEST, HIGHEST, ...).
package lexer

import (
	"fmt"
	"strings"
	"unicode"
)

// Type classifies a token.
type Type uint8

// Token types.
const (
	EOF Type = iota
	Ident
	Keyword
	Number
	String // single-quoted SQL string literal, unescaped content
	Op     // operator or punctuation: = <> < <= > >= + - * / ( ) , ; . [ ]
	Param  // positional bind parameter: '?' (Text empty) or '$n' (Text = digits)
)

func (t Type) String() string {
	switch t {
	case EOF:
		return "EOF"
	case Ident:
		return "identifier"
	case Keyword:
		return "keyword"
	case Number:
		return "number"
	case String:
		return "string"
	case Op:
		return "operator"
	case Param:
		return "parameter"
	}
	return "token"
}

// Token is one lexical unit. Text holds the raw form except for String
// tokens, where it holds the unescaped content. Keywords are upper-cased.
type Token struct {
	Type Type
	Text string
	Pos  int // byte offset in the input, for error messages
}

// keywords is the set of reserved words. Everything else lexes as Ident.
// Function names (COUNT, ABS, ...) are deliberately not keywords.
var keywords = map[string]bool{
	// Standard SQL.
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"HAVING": true, "ORDER": true, "ASC": true, "DESC": true, "AND": true,
	"OR": true, "NOT": true, "IN": true, "LIKE": true, "BETWEEN": true,
	"IS": true, "NULL": true, "EXISTS": true, "CASE": true, "WHEN": true,
	"THEN": true, "ELSE": true, "END": true, "AS": true, "DISTINCT": true,
	"INSERT": true, "INTO": true, "VALUES": true, "UPDATE": true, "SET": true,
	"DELETE": true, "CREATE": true, "TABLE": true, "VIEW": true, "INDEX": true,
	"DROP": true, "JOIN": true, "INNER": true, "LEFT": true, "OUTER": true,
	"CROSS": true, "ON": true, "LIMIT": true, "OFFSET": true, "UNION": true,
	"ALL": true, "TRUE": true, "FALSE": true, "PRIMARY": true, "KEY": true,
	"INTEGER": true, "INT": true, "FLOAT": true, "REAL": true, "DOUBLE": true,
	"VARCHAR": true, "CHAR": true, "TEXT": true, "BOOLEAN": true, "DATE": true,
	"DEFAULT": true, "UNIQUE": true, "IF": true,
	// Preference SQL extensions.
	"PREFERRING": true, "GROUPING": true, "BUT": true, "ONLY": true,
	"PREFERENCE": true,
	"CASCADE":    true, "AROUND": true, "LOWEST": true, "HIGHEST": true,
	"POS": true, "NEG": true, "CONTAINS": true, "EXPLICIT": true,
	"TOP": true, "LEVEL": true, "DISTANCE": true, "REGULAR": true,
	"SUBSCRIBE": true,
}

// IsKeyword reports whether the upper-cased word is reserved.
func IsKeyword(w string) bool { return keywords[strings.ToUpper(w)] }

// Lexer scans an input string into tokens.
type Lexer struct {
	src string
	pos int
}

// New returns a Lexer over src.
func New(src string) *Lexer { return &Lexer{src: src} }

// Error describes a lexical error with its byte offset.
type Error struct {
	Pos int
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("syntax error at offset %d: %s", e.Pos, e.Msg) }

// All tokenizes the entire input, appending a final EOF token.
func (l *Lexer) All() ([]Token, error) {
	var toks []Token
	for {
		t, err := l.Next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.Type == EOF {
			return toks, nil
		}
	}
}

// Next returns the next token.
func (l *Lexer) Next() (Token, error) {
	l.skipSpaceAndComments()
	if l.pos >= len(l.src) {
		return Token{Type: EOF, Pos: l.pos}, nil
	}
	start := l.pos
	c := l.src[l.pos]
	switch {
	case isIdentStart(rune(c)):
		return l.lexWord(start), nil
	case c >= '0' && c <= '9':
		return l.lexNumber(start)
	case c == '.':
		if l.pos+1 < len(l.src) && isDigit(l.src[l.pos+1]) {
			return l.lexNumber(start)
		}
		l.pos++
		return Token{Type: Op, Text: ".", Pos: start}, nil
	case c == '\'':
		return l.lexString(start)
	case c == '"':
		return l.lexQuotedIdent(start)
	case c == '?':
		l.pos++
		return Token{Type: Param, Pos: start}, nil
	case c == '$':
		return l.lexDollarParam(start)
	default:
		return l.lexOp(start)
	}
}

func (l *Lexer) skipSpaceAndComments() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '*':
			end := strings.Index(l.src[l.pos+2:], "*/")
			if end < 0 {
				l.pos = len(l.src)
			} else {
				l.pos += 2 + end + 2
			}
		default:
			return
		}
	}
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || r == '$' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func (l *Lexer) lexWord(start int) Token {
	for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
		l.pos++
	}
	word := l.src[start:l.pos]
	if IsKeyword(word) {
		return Token{Type: Keyword, Text: strings.ToUpper(word), Pos: start}
	}
	return Token{Type: Ident, Text: word, Pos: start}
}

func (l *Lexer) lexNumber(start int) (Token, error) {
	seenDot, seenExp := false, false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case isDigit(c):
			l.pos++
		case c == '.' && !seenDot && !seenExp:
			seenDot = true
			l.pos++
		case (c == 'e' || c == 'E') && !seenExp && l.pos+1 < len(l.src) &&
			(isDigit(l.src[l.pos+1]) || ((l.src[l.pos+1] == '+' || l.src[l.pos+1] == '-') && l.pos+2 < len(l.src) && isDigit(l.src[l.pos+2]))):
			seenExp = true
			l.pos++
			if l.src[l.pos] == '+' || l.src[l.pos] == '-' {
				l.pos++
			}
		default:
			return Token{Type: Number, Text: l.src[start:l.pos], Pos: start}, nil
		}
	}
	return Token{Type: Number, Text: l.src[start:l.pos], Pos: start}, nil
}

func (l *Lexer) lexString(start int) (Token, error) {
	l.pos++ // opening quote
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\'' {
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
				b.WriteByte('\'')
				l.pos += 2
				continue
			}
			l.pos++
			return Token{Type: String, Text: b.String(), Pos: start}, nil
		}
		b.WriteByte(c)
		l.pos++
	}
	return Token{}, &Error{Pos: start, Msg: "unterminated string literal"}
}

func (l *Lexer) lexQuotedIdent(start int) (Token, error) {
	l.pos++ // opening quote
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '"' {
			l.pos++
			return Token{Type: Ident, Text: b.String(), Pos: start}, nil
		}
		b.WriteByte(c)
		l.pos++
	}
	return Token{}, &Error{Pos: start, Msg: "unterminated quoted identifier"}
}

// lexDollarParam scans a '$n' positional parameter (n = 1-based position).
func (l *Lexer) lexDollarParam(start int) (Token, error) {
	l.pos++ // '$'
	ds := l.pos
	for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
		l.pos++
	}
	if l.pos == ds {
		return Token{}, &Error{Pos: start, Msg: "expected digits after '$' (positional parameter)"}
	}
	return Token{Type: Param, Text: l.src[ds:l.pos], Pos: start}, nil
}

var twoCharOps = map[string]bool{"<>": true, "<=": true, ">=": true, "!=": true, "||": true}

func (l *Lexer) lexOp(start int) (Token, error) {
	if l.pos+1 < len(l.src) {
		two := l.src[l.pos : l.pos+2]
		if twoCharOps[two] {
			l.pos += 2
			if two == "!=" {
				two = "<>"
			}
			return Token{Type: Op, Text: two, Pos: start}, nil
		}
	}
	c := l.src[l.pos]
	switch c {
	case '=', '<', '>', '+', '-', '*', '/', '(', ')', ',', ';', '[', ']', '%':
		l.pos++
		return Token{Type: Op, Text: string(c), Pos: start}, nil
	}
	return Token{}, &Error{Pos: start, Msg: fmt.Sprintf("unexpected character %q", c)}
}
