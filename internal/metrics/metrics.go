// Package metrics is a dependency-free registry of atomic counters,
// gauges and histograms for engine-wide observability. The instrumented
// layers (core sessions, the plan caches, storage, the server loop)
// register their series once at init against the Default registry;
// consumers render the whole registry as Prometheus text exposition
// (the server's /metrics endpoint), as an expvar-compatible snapshot
// (/debug/vars), or as a tabular snapshot (prefsql's \stats).
//
// Everything is stdlib-only and allocation-free on the hot path: a
// counter increment is one atomic add, a histogram observation is two
// atomic adds plus a bucket search over a small sorted slice.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// DefBuckets are the default latency histogram bounds, in seconds —
// 100µs to 10s, the span between an index probe on a small table and a
// multi-million-row skyline.
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Counter is a monotonically increasing series.
type Counter struct {
	v    atomic.Int64
	meta meta
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (negative n is ignored: counters only go up).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a series that can go up and down.
type Gauge struct {
	v    atomic.Int64
	meta meta
}

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adds n (which may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket distribution. Observations are float64
// (seconds, by convention); the running sum is kept in nanoseconds so
// that updates stay single atomic adds.
type Histogram struct {
	meta    meta
	bounds  []float64 // ascending upper bounds; an implicit +Inf bucket follows
	buckets []atomic.Int64
	count   atomic.Int64
	sumNs   atomic.Int64
}

// Observe records one observation (in seconds).
func (h *Histogram) Observe(sec float64) {
	i := sort.SearchFloat64s(h.bounds, sec)
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sumNs.Add(int64(sec * 1e9))
}

// ObserveDuration records one duration observation.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observations, in seconds.
func (h *Histogram) Sum() float64 { return float64(h.sumNs.Load()) / 1e9 }

// Quantile estimates the q-quantile (0 < q < 1) by linear interpolation
// within the bucket where the cumulative count crosses q. Observations
// beyond the last finite bound clamp to it; an empty histogram reports 0.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum int64
	for i := range h.buckets {
		n := h.buckets[i].Load()
		if n == 0 {
			continue
		}
		if float64(cum+n) >= rank {
			if i >= len(h.bounds) { // +Inf bucket: clamp
				return h.bounds[len(h.bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			frac := (rank - float64(cum)) / float64(n)
			if frac < 0 {
				frac = 0
			} else if frac > 1 {
				frac = 1
			}
			return lo + frac*(h.bounds[i]-lo)
		}
		cum += n
	}
	return h.bounds[len(h.bounds)-1]
}

// meta identifies one registered series.
type meta struct {
	name   string // Prometheus family name, e.g. prefsql_statements_total
	labels string // rendered label pairs without braces, e.g. `kind="select"`; "" for none
	help   string
}

func (m meta) series() string {
	if m.labels == "" {
		return m.name
	}
	return m.name + "{" + m.labels + "}"
}

// entry is one registered metric of any kind.
type entry struct {
	meta meta
	c    *Counter
	g    *Gauge
	h    *Histogram
}

func (e entry) typ() string {
	switch {
	case e.c != nil:
		return "counter"
	case e.g != nil:
		return "gauge"
	default:
		return "histogram"
	}
}

// Registry holds an ordered set of metrics. Registration is idempotent:
// re-registering the same series name+labels returns the existing metric
// (so package-level instrumentation and tests compose), but a kind
// mismatch panics — that is a programming error.
type Registry struct {
	mu      sync.Mutex
	entries []entry
	byKey   map[string]int
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{byKey: map[string]int{}} }

// Default is the process-wide registry all engine instrumentation uses.
var Default = NewRegistry()

func (r *Registry) lookup(m meta) (entry, bool) {
	if i, ok := r.byKey[m.series()]; ok {
		return r.entries[i], true
	}
	return entry{}, false
}

func (r *Registry) add(e entry) {
	r.byKey[e.meta.series()] = len(r.entries)
	r.entries = append(r.entries, e)
}

// Counter registers (or returns) a counter with no labels.
func (r *Registry) Counter(name, help string) *Counter {
	return r.CounterL(name, "", help)
}

// CounterL registers (or returns) a counter with rendered label pairs,
// e.g. CounterL("prefsql_statements_total", `kind="select"`, ...).
func (r *Registry) CounterL(name, labels, help string) *Counter {
	m := meta{name: name, labels: labels, help: help}
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.lookup(m); ok {
		if e.c == nil {
			panic("metrics: " + m.series() + " re-registered with a different kind")
		}
		return e.c
	}
	c := &Counter{meta: m}
	r.add(entry{meta: m, c: c})
	return c
}

// Gauge registers (or returns) a gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	m := meta{name: name, help: help}
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.lookup(m); ok {
		if e.g == nil {
			panic("metrics: " + m.series() + " re-registered with a different kind")
		}
		return e.g
	}
	g := &Gauge{meta: m}
	r.add(entry{meta: m, g: g})
	return g
}

// Histogram registers (or returns) a histogram with the given ascending
// upper bounds (DefBuckets when none are given).
func (r *Registry) Histogram(name, help string, bounds ...float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefBuckets
	}
	m := meta{name: name, help: help}
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.lookup(m); ok {
		if e.h == nil {
			panic("metrics: " + m.series() + " re-registered with a different kind")
		}
		return e.h
	}
	h := &Histogram{meta: m, bounds: bounds, buckets: make([]atomic.Int64, len(bounds)+1)}
	r.add(entry{meta: m, h: h})
	return h
}

// snapshotEntries copies the entry list under the lock; the metric values
// themselves are read atomically afterwards.
func (r *Registry) snapshotEntries() []entry {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]entry(nil), r.entries...)
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4). Families sharing a name emit one HELP/TYPE
// header; histograms expand into cumulative _bucket series plus _sum and
// _count.
func (r *Registry) WritePrometheus(w io.Writer) {
	entries := r.snapshotEntries()
	sort.SliceStable(entries, func(i, j int) bool {
		if entries[i].meta.name != entries[j].meta.name {
			return entries[i].meta.name < entries[j].meta.name
		}
		return entries[i].meta.labels < entries[j].meta.labels
	})
	lastFamily := ""
	for _, e := range entries {
		if e.meta.name != lastFamily {
			fmt.Fprintf(w, "# HELP %s %s\n", e.meta.name, e.meta.help)
			fmt.Fprintf(w, "# TYPE %s %s\n", e.meta.name, e.typ())
			lastFamily = e.meta.name
		}
		switch {
		case e.c != nil:
			fmt.Fprintf(w, "%s %d\n", e.meta.series(), e.c.Value())
		case e.g != nil:
			fmt.Fprintf(w, "%s %d\n", e.meta.series(), e.g.Value())
		case e.h != nil:
			writePromHistogram(w, e.meta, e.h)
		}
	}
}

func writePromHistogram(w io.Writer, m meta, h *Histogram) {
	var cum int64
	for i, ub := range h.bounds {
		cum += h.buckets[i].Load()
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", m.name, formatBound(ub), cum)
	}
	cum += h.buckets[len(h.bounds)].Load()
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", m.name, cum)
	fmt.Fprintf(w, "%s_sum %g\n", m.name, h.Sum())
	fmt.Fprintf(w, "%s_count %d\n", m.name, h.Count())
}

func formatBound(b float64) string {
	if b == math.Trunc(b) {
		return fmt.Sprintf("%g", b)
	}
	return strings.TrimRight(fmt.Sprintf("%f", b), "0")
}

// Snapshot is one metric's point-in-time reading, for the expvar surface
// and prefsql's \stats display.
type Snapshot struct {
	Name   string             `json:"name"`
	Labels string             `json:"labels,omitempty"`
	Type   string             `json:"type"`
	Value  int64              `json:"value,omitempty"`     // counter / gauge
	Count  int64              `json:"count,omitempty"`     // histogram
	Sum    float64            `json:"sum,omitempty"`       // histogram, seconds
	Quants map[string]float64 `json:"quantiles,omitempty"` // histogram: p50/p95/p99, seconds
}

// Snapshot reads every registered metric, in registration order.
func (r *Registry) Snapshot() []Snapshot {
	entries := r.snapshotEntries()
	out := make([]Snapshot, 0, len(entries))
	for _, e := range entries {
		s := Snapshot{Name: e.meta.name, Labels: e.meta.labels, Type: e.typ()}
		switch {
		case e.c != nil:
			s.Value = e.c.Value()
		case e.g != nil:
			s.Value = e.g.Value()
		case e.h != nil:
			s.Count = e.h.Count()
			s.Sum = e.h.Sum()
			s.Quants = map[string]float64{
				"p50": e.h.Quantile(0.50),
				"p95": e.h.Quantile(0.95),
				"p99": e.h.Quantile(0.99),
			}
		}
		out = append(out, s)
	}
	return out
}

// Expvar returns the snapshot as a map keyed by series name, the shape
// published under /debug/vars.
func (r *Registry) Expvar() map[string]any {
	out := map[string]any{}
	for _, s := range r.Snapshot() {
		key := s.Name
		if s.Labels != "" {
			key += "{" + s.Labels + "}"
		}
		switch s.Type {
		case "histogram":
			out[key] = map[string]any{"count": s.Count, "sum": s.Sum, "quantiles": s.Quants}
		default:
			out[key] = s.Value
		}
	}
	return out
}
