package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRegistrationIdempotent(t *testing.T) {
	r := NewRegistry()
	c1 := r.CounterL("m_total", `kind="a"`, "help")
	c2 := r.CounterL("m_total", `kind="a"`, "help")
	if c1 != c2 {
		t.Fatal("re-registering the same series returned a different counter")
	}
	if other := r.CounterL("m_total", `kind="b"`, "help"); other == c1 {
		t.Fatal("distinct labels shared a counter")
	}
	g1 := r.Gauge("m_gauge", "help")
	if g2 := r.Gauge("m_gauge", "help"); g1 != g2 {
		t.Fatal("re-registering the same gauge returned a different gauge")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("kind mismatch did not panic")
		}
	}()
	r.Counter("m_gauge", "help") // registered above as a gauge
}

func TestCounterIgnoresNegative(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "help")
	c.Inc()
	c.Add(4)
	c.Add(-100)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.Gauge("g", "help")
	g.Set(10)
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h_seconds", "help", 0.01, 0.1, 1)
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile != 0")
	}
	for i := 0; i < 90; i++ {
		h.Observe(0.005) // first bucket
	}
	for i := 0; i < 10; i++ {
		h.Observe(0.05) // second bucket
	}
	if got := h.Count(); got != 100 {
		t.Fatalf("count = %d", got)
	}
	if p50 := h.Quantile(0.50); p50 <= 0 || p50 > 0.01 {
		t.Fatalf("p50 = %g, want within the first bucket", p50)
	}
	if p95 := h.Quantile(0.95); p95 <= 0.01 || p95 > 0.1 {
		t.Fatalf("p95 = %g, want within the second bucket", p95)
	}
	h.ObserveDuration(time.Hour) // beyond the last bound: clamps
	if got := h.Quantile(0.9999); got != 1 {
		t.Fatalf("overflow quantile = %g, want clamp to last bound", got)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.CounterL("q_total", `kind="select"`, "queries by kind").Add(3)
	r.CounterL("q_total", `kind="insert"`, "queries by kind").Add(2)
	h := r.Histogram("lat_seconds", "latency", 0.1, 1)
	h.Observe(0.05)
	h.Observe(0.5)
	var sb strings.Builder
	r.WritePrometheus(&sb)
	out := sb.String()

	if n := strings.Count(out, "# TYPE q_total counter"); n != 1 {
		t.Fatalf("q_total TYPE header emitted %d times:\n%s", n, out)
	}
	for _, want := range []string{
		`q_total{kind="insert"} 2`,
		`q_total{kind="select"} 3`,
		"# TYPE lat_seconds histogram",
		`lat_seconds_bucket{le="0.1"} 1`,
		`lat_seconds_bucket{le="1"} 2`,
		`lat_seconds_bucket{le="+Inf"} 2`,
		"lat_seconds_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestSnapshotAndExpvar(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "help").Add(7)
	r.Histogram("b_seconds", "help", 0.1, 1).Observe(0.05)
	snaps := r.Snapshot()
	if len(snaps) != 2 || snaps[0].Name != "a_total" || snaps[0].Value != 7 {
		t.Fatalf("snapshot = %+v", snaps)
	}
	if snaps[1].Type != "histogram" || snaps[1].Count != 1 || snaps[1].Quants["p50"] <= 0 {
		t.Fatalf("histogram snapshot = %+v", snaps[1])
	}
	ev := r.Expvar()
	if ev["a_total"] != int64(7) {
		t.Fatalf("expvar a_total = %v", ev["a_total"])
	}
	if _, ok := ev["b_seconds"].(map[string]any); !ok {
		t.Fatalf("expvar b_seconds = %T", ev["b_seconds"])
	}
}

// TestConcurrentUse pins that registration and updates are safe under
// the race detector: many goroutines re-register and bump the same
// series while another renders the registry.
func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				r.CounterL("cc_total", `kind="x"`, "help").Inc()
				r.Histogram("ch_seconds", "help").Observe(0.001)
				var sb strings.Builder
				r.WritePrometheus(&sb)
			}
		}()
	}
	wg.Wait()
	if got := r.CounterL("cc_total", `kind="x"`, "help").Value(); got != 8*200 {
		t.Fatalf("counter = %d, want %d", got, 8*200)
	}
}
