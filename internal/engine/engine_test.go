package engine

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/ast"
	"repro/internal/expr"
	"repro/internal/parser"
	"repro/internal/value"
)

// newCarsDB builds the 3-row Cars relation from §3.2 of the paper.
func newCarsDB(t *testing.T) *DB {
	t.Helper()
	db := New()
	mustExec(t, db, `CREATE TABLE Cars (
		Identifier INTEGER PRIMARY KEY, Make VARCHAR, Model VARCHAR,
		Price INTEGER, Mileage INTEGER, Airbag VARCHAR, Diesel VARCHAR)`)
	mustExec(t, db, `INSERT INTO Cars VALUES
		(1, 'Audi', 'A6', 40000, 15000, 'yes', 'no'),
		(2, 'BMW', '5 series', 35000, 30000, 'yes', 'yes'),
		(3, 'Volkswagen', 'Beetle', 20000, 10000, 'yes', 'no')`)
	return db
}

func mustExec(t *testing.T, db *DB, sql string) *Result {
	t.Helper()
	res, err := db.Exec(sql)
	if err != nil {
		t.Fatalf("exec %q: %v", sql, err)
	}
	return res
}

func mustQuery(t *testing.T, db *DB, sql string) *Result {
	t.Helper()
	return mustExec(t, db, sql)
}

func TestCreateInsertSelect(t *testing.T) {
	db := newCarsDB(t)
	res := mustQuery(t, db, "SELECT * FROM Cars")
	if len(res.Rows) != 3 || len(res.Columns) != 7 {
		t.Fatalf("rows=%d cols=%d", len(res.Rows), len(res.Columns))
	}
	if res.Columns[1] != "Make" {
		t.Errorf("columns: %v", res.Columns)
	}
}

func TestWhereFilter(t *testing.T) {
	db := newCarsDB(t)
	res := mustQuery(t, db, "SELECT Make FROM Cars WHERE Price < 36000")
	if len(res.Rows) != 2 {
		t.Fatalf("rows: %d", len(res.Rows))
	}
}

func TestProjectionExpressionsAndAliases(t *testing.T) {
	db := newCarsDB(t)
	res := mustQuery(t, db, "SELECT Make, Price / 1000 AS kprice FROM Cars WHERE Identifier = 1")
	if res.Columns[1] != "kprice" {
		t.Errorf("columns: %v", res.Columns)
	}
	if res.Rows[0][1].I != 40 {
		t.Errorf("kprice: %v", res.Rows[0][1])
	}
}

func TestOrderBy(t *testing.T) {
	db := newCarsDB(t)
	res := mustQuery(t, db, "SELECT Make FROM Cars ORDER BY Price DESC")
	want := []string{"Audi", "BMW", "Volkswagen"}
	for i, w := range want {
		if res.Rows[i][0].S != w {
			t.Errorf("row %d = %s, want %s", i, res.Rows[i][0].S, w)
		}
	}
	// order by alias
	res = mustQuery(t, db, "SELECT Make, Price / 1000 AS kp FROM Cars ORDER BY kp")
	if res.Rows[0][0].S != "Volkswagen" {
		t.Errorf("order by alias: %v", res.Rows[0])
	}
}

func TestOrderByMultipleKeysStable(t *testing.T) {
	db := New()
	mustExec(t, db, "CREATE TABLE t (a INT, b INT)")
	mustExec(t, db, "INSERT INTO t VALUES (1, 2), (1, 1), (0, 9)")
	res := mustQuery(t, db, "SELECT a, b FROM t ORDER BY a, b DESC")
	if res.Rows[0][0].I != 0 || res.Rows[1][1].I != 2 || res.Rows[2][1].I != 1 {
		t.Errorf("rows: %v", res.Rows)
	}
}

func TestLimitOffset(t *testing.T) {
	db := newCarsDB(t)
	res := mustQuery(t, db, "SELECT Identifier FROM Cars ORDER BY Identifier LIMIT 1 OFFSET 1")
	if len(res.Rows) != 1 || res.Rows[0][0].I != 2 {
		t.Fatalf("rows: %v", res.Rows)
	}
	res = mustQuery(t, db, "SELECT Identifier FROM Cars LIMIT 99 OFFSET 99")
	if len(res.Rows) != 0 {
		t.Fatal("offset past end should be empty")
	}
}

func TestDistinct(t *testing.T) {
	db := newCarsDB(t)
	res := mustQuery(t, db, "SELECT DISTINCT Airbag FROM Cars")
	if len(res.Rows) != 1 {
		t.Fatalf("distinct rows: %d", len(res.Rows))
	}
}

func TestAggregatesWholeTable(t *testing.T) {
	db := newCarsDB(t)
	res := mustQuery(t, db, "SELECT COUNT(*), SUM(Price), AVG(Price), MIN(Price), MAX(Price) FROM Cars")
	row := res.Rows[0]
	if row[0].I != 3 || row[1].I != 95000 || row[3].I != 20000 || row[4].I != 40000 {
		t.Errorf("aggregates: %v", row)
	}
	if row[2].Num() < 31666 || row[2].Num() > 31667 {
		t.Errorf("avg: %v", row[2])
	}
}

func TestAggregatesOnEmptyInput(t *testing.T) {
	db := newCarsDB(t)
	res := mustQuery(t, db, "SELECT COUNT(*), SUM(Price) FROM Cars WHERE Price > 999999")
	if res.Rows[0][0].I != 0 || !res.Rows[0][1].IsNull() {
		t.Errorf("empty aggregates: %v", res.Rows[0])
	}
}

func TestGroupByHaving(t *testing.T) {
	db := New()
	mustExec(t, db, "CREATE TABLE sales (region VARCHAR, amount INT)")
	mustExec(t, db, `INSERT INTO sales VALUES
		('north', 10), ('north', 20), ('south', 5), ('east', 100)`)
	res := mustQuery(t, db, `SELECT region, SUM(amount) AS total FROM sales
		GROUP BY region HAVING SUM(amount) > 10 ORDER BY total DESC`)
	if len(res.Rows) != 2 {
		t.Fatalf("groups: %v", res.Rows)
	}
	if res.Rows[0][0].S != "east" || res.Rows[0][1].I != 100 {
		t.Errorf("first group: %v", res.Rows[0])
	}
	if res.Rows[1][0].S != "north" || res.Rows[1][1].I != 30 {
		t.Errorf("second group: %v", res.Rows[1])
	}
}

func TestCountDistinct(t *testing.T) {
	db := New()
	mustExec(t, db, "CREATE TABLE t (a INT)")
	mustExec(t, db, "INSERT INTO t VALUES (1), (1), (2), (NULL)")
	res := mustQuery(t, db, "SELECT COUNT(a), COUNT(DISTINCT a) FROM t")
	if res.Rows[0][0].I != 3 || res.Rows[0][1].I != 2 {
		t.Errorf("counts: %v", res.Rows[0])
	}
}

func TestCrossProductAndQualifiedColumns(t *testing.T) {
	db := New()
	mustExec(t, db, "CREATE TABLE a (x INT)")
	mustExec(t, db, "CREATE TABLE b (y INT)")
	mustExec(t, db, "INSERT INTO a VALUES (1), (2)")
	mustExec(t, db, "INSERT INTO b VALUES (10), (20)")
	res := mustQuery(t, db, "SELECT a.x, b.y FROM a, b ORDER BY a.x, b.y")
	if len(res.Rows) != 4 {
		t.Fatalf("cross rows: %d", len(res.Rows))
	}
	if res.Rows[3][0].I != 2 || res.Rows[3][1].I != 20 {
		t.Errorf("last row: %v", res.Rows[3])
	}
}

func TestInnerJoin(t *testing.T) {
	db := New()
	mustExec(t, db, "CREATE TABLE emp (id INT, dept INT, name VARCHAR)")
	mustExec(t, db, "CREATE TABLE dept (id INT, dname VARCHAR)")
	mustExec(t, db, "INSERT INTO emp VALUES (1, 10, 'ann'), (2, 20, 'bob'), (3, 99, 'zoe')")
	mustExec(t, db, "INSERT INTO dept VALUES (10, 'eng'), (20, 'ops')")
	res := mustQuery(t, db, "SELECT name, dname FROM emp JOIN dept ON emp.dept = dept.id ORDER BY name")
	if len(res.Rows) != 2 {
		t.Fatalf("join rows: %v", res.Rows)
	}
	if res.Rows[0][0].S != "ann" || res.Rows[0][1].S != "eng" {
		t.Errorf("row: %v", res.Rows[0])
	}
}

func TestLeftJoinPadsNulls(t *testing.T) {
	db := New()
	mustExec(t, db, "CREATE TABLE emp (id INT, dept INT)")
	mustExec(t, db, "CREATE TABLE dept (id INT, dname VARCHAR)")
	mustExec(t, db, "INSERT INTO emp VALUES (1, 10), (2, 99)")
	mustExec(t, db, "INSERT INTO dept VALUES (10, 'eng')")
	res := mustQuery(t, db, "SELECT emp.id, dname FROM emp LEFT JOIN dept ON emp.dept = dept.id ORDER BY emp.id")
	if len(res.Rows) != 2 {
		t.Fatalf("rows: %v", res.Rows)
	}
	if !res.Rows[1][1].IsNull() {
		t.Errorf("unmatched row should be NULL-padded: %v", res.Rows[1])
	}
}

func TestNonEquiJoinFallsBackToNestedLoop(t *testing.T) {
	db := New()
	mustExec(t, db, "CREATE TABLE a (x INT)")
	mustExec(t, db, "CREATE TABLE b (y INT)")
	mustExec(t, db, "INSERT INTO a VALUES (1), (5)")
	mustExec(t, db, "INSERT INTO b VALUES (3), (4)")
	res := mustQuery(t, db, "SELECT x, y FROM a JOIN b ON a.x < b.y ORDER BY x, y")
	if len(res.Rows) != 2 {
		t.Fatalf("rows: %v", res.Rows)
	}
}

func TestViews(t *testing.T) {
	db := newCarsDB(t)
	mustExec(t, db, "CREATE VIEW cheap AS SELECT * FROM Cars WHERE Price < 36000")
	res := mustQuery(t, db, "SELECT COUNT(*) FROM cheap")
	if res.Rows[0][0].I != 2 {
		t.Errorf("view count: %v", res.Rows[0])
	}
	// view with alias
	res = mustQuery(t, db, "SELECT c.Make FROM cheap c WHERE c.Price = 20000")
	if len(res.Rows) != 1 || res.Rows[0][0].S != "Volkswagen" {
		t.Errorf("aliased view: %v", res.Rows)
	}
}

func TestDerivedTable(t *testing.T) {
	db := newCarsDB(t)
	res := mustQuery(t, db, `SELECT m FROM (SELECT Make AS m, Price FROM Cars) sub WHERE sub.Price > 30000 ORDER BY m`)
	if len(res.Rows) != 2 || res.Rows[0][0].S != "Audi" {
		t.Errorf("derived: %v", res.Rows)
	}
}

// The paper's §3.2 rewritten skyline query must run on the plain engine.
func TestPaperNotExistsSkylineQuery(t *testing.T) {
	db := newCarsDB(t)
	mustExec(t, db, `CREATE VIEW Aux AS
		SELECT Identifier, Make, Model, Price, Mileage, Airbag, Diesel,
		CASE WHEN Make = 'Audi' THEN 1 ELSE 2 END AS Makelevel,
		CASE WHEN Diesel = 'yes' THEN 1 ELSE 2 END AS Diesellevel
		FROM Cars`)
	res := mustQuery(t, db, `SELECT Identifier, Make FROM Aux A1
		WHERE NOT EXISTS (SELECT 1 FROM Aux A2
			WHERE A2.Makelevel <= A1.Makelevel AND
			      A2.Diesellevel <= A1.Diesellevel AND
			      (A2.Makelevel < A1.Makelevel OR A2.Diesellevel < A1.Diesellevel))
		ORDER BY Identifier`)
	if len(res.Rows) != 2 {
		t.Fatalf("skyline size: %d (%v)", len(res.Rows), res.Rows)
	}
	if res.Rows[0][1].S != "Audi" || res.Rows[1][1].S != "BMW" {
		t.Errorf("skyline: %v", res.Rows)
	}
}

func TestCorrelatedExists(t *testing.T) {
	db := New()
	mustExec(t, db, "CREATE TABLE o (id INT)")
	mustExec(t, db, "CREATE TABLE i (oid INT)")
	mustExec(t, db, "INSERT INTO o VALUES (1), (2), (3)")
	mustExec(t, db, "INSERT INTO i VALUES (1), (3)")
	res := mustQuery(t, db, "SELECT id FROM o WHERE EXISTS (SELECT 1 FROM i WHERE i.oid = o.id) ORDER BY id")
	if len(res.Rows) != 2 || res.Rows[1][0].I != 3 {
		t.Errorf("exists: %v", res.Rows)
	}
}

func TestInSubquery(t *testing.T) {
	db := New()
	mustExec(t, db, "CREATE TABLE o (id INT)")
	mustExec(t, db, "CREATE TABLE i (oid INT)")
	mustExec(t, db, "INSERT INTO o VALUES (1), (2), (3)")
	mustExec(t, db, "INSERT INTO i VALUES (2)")
	res := mustQuery(t, db, "SELECT id FROM o WHERE id NOT IN (SELECT oid FROM i) ORDER BY id")
	if len(res.Rows) != 2 || res.Rows[0][0].I != 1 {
		t.Errorf("not in: %v", res.Rows)
	}
}

func TestScalarSubquery(t *testing.T) {
	db := newCarsDB(t)
	res := mustQuery(t, db, "SELECT Make FROM Cars WHERE Price = (SELECT MAX(Price) FROM Cars)")
	if len(res.Rows) != 1 || res.Rows[0][0].S != "Audi" {
		t.Errorf("scalar sub: %v", res.Rows)
	}
}

func TestUpdateDelete(t *testing.T) {
	db := newCarsDB(t)
	res := mustExec(t, db, "UPDATE Cars SET Price = Price - 5000 WHERE Make = 'Audi'")
	if res.Affected != 1 {
		t.Fatalf("affected: %d", res.Affected)
	}
	q := mustQuery(t, db, "SELECT Price FROM Cars WHERE Make = 'Audi'")
	if q.Rows[0][0].I != 35000 {
		t.Errorf("price: %v", q.Rows[0][0])
	}
	res = mustExec(t, db, "DELETE FROM Cars WHERE Diesel = 'no'")
	if res.Affected != 2 {
		t.Fatalf("deleted: %d", res.Affected)
	}
	if mustQuery(t, db, "SELECT * FROM Cars").Rows[0][1].S != "BMW" {
		t.Error("wrong survivor")
	}
}

func TestInsertColumnSubset(t *testing.T) {
	db := New()
	mustExec(t, db, "CREATE TABLE t (a INT, b VARCHAR, c FLOAT)")
	mustExec(t, db, "INSERT INTO t (b, a) VALUES ('x', 1)")
	res := mustQuery(t, db, "SELECT a, b, c FROM t")
	if res.Rows[0][0].I != 1 || res.Rows[0][1].S != "x" || !res.Rows[0][2].IsNull() {
		t.Errorf("row: %v", res.Rows[0])
	}
}

func TestInsertSelect(t *testing.T) {
	db := newCarsDB(t)
	mustExec(t, db, `CREATE TABLE Max (Identifier INTEGER, Make VARCHAR, Model VARCHAR,
		Price INTEGER, Mileage INTEGER, Airbag VARCHAR, Diesel VARCHAR)`)
	res := mustExec(t, db, "INSERT INTO Max SELECT * FROM Cars WHERE Price > 30000")
	if res.Affected != 2 {
		t.Fatalf("inserted: %d", res.Affected)
	}
}

func TestCreateIndexAndDrop(t *testing.T) {
	db := newCarsDB(t)
	mustExec(t, db, "CREATE INDEX idx_make ON Cars (Make)")
	res := mustQuery(t, db, "SELECT Model FROM Cars WHERE Make = 'BMW'")
	if len(res.Rows) != 1 || res.Rows[0][0].S != "5 series" {
		t.Errorf("index query: %v", res.Rows)
	}
	mustExec(t, db, "DROP INDEX idx_make")
	mustExec(t, db, "DROP TABLE IF EXISTS nonexistent")
	if _, err := db.Exec("DROP TABLE nonexistent"); err == nil {
		t.Error("drop missing table should fail")
	}
}

func TestSelectWithoutFrom(t *testing.T) {
	db := New()
	res := mustQuery(t, db, "SELECT 1 + 2 AS x, 'hi'")
	if res.Rows[0][0].I != 3 || res.Rows[0][1].S != "hi" {
		t.Errorf("row: %v", res.Rows[0])
	}
}

func TestEnginePassesThroughStandardSQLButRejectsPreferences(t *testing.T) {
	db := newCarsDB(t)
	_, err := db.Exec("SELECT * FROM Cars PREFERRING LOWEST(Price)")
	if !errors.Is(err, ErrPreferenceQuery) {
		t.Errorf("want ErrPreferenceQuery, got %v", err)
	}
}

func TestErrors(t *testing.T) {
	db := newCarsDB(t)
	bad := []string{
		"SELECT * FROM nonexistent",
		"SELECT nonexistent FROM Cars",
		"INSERT INTO Cars VALUES (1)",
		"INSERT INTO nope VALUES (1)",
		"UPDATE nope SET a = 1",
		"UPDATE Cars SET nope = 1",
		"DELETE FROM nope",
		"CREATE TABLE Cars (a INT)",
		"CREATE INDEX i ON nope (a)",
		"CREATE INDEX i ON Cars (nope)",
		"SELECT SUM(Make) FROM Cars",
		"SELECT MIN(*) FROM Cars",
	}
	for _, sql := range bad {
		if _, err := db.Exec(sql); err == nil {
			t.Errorf("%q should fail", sql)
		}
	}
}

func TestNullHandlingInWhere(t *testing.T) {
	db := New()
	mustExec(t, db, "CREATE TABLE t (a INT)")
	mustExec(t, db, "INSERT INTO t VALUES (1), (NULL), (3)")
	// NULL comparisons filter out
	res := mustQuery(t, db, "SELECT a FROM t WHERE a > 0")
	if len(res.Rows) != 2 {
		t.Errorf("rows: %v", res.Rows)
	}
	res = mustQuery(t, db, "SELECT a FROM t WHERE a IS NULL")
	if len(res.Rows) != 1 {
		t.Errorf("is null rows: %v", res.Rows)
	}
}

func TestMultiStatementScript(t *testing.T) {
	db := New()
	res := mustExec(t, db, `
		CREATE TABLE t (a INT);
		INSERT INTO t VALUES (1), (2);
		SELECT COUNT(*) FROM t;`)
	if res.Rows[0][0].I != 2 {
		t.Errorf("script result: %v", res.Rows)
	}
}

func TestInsertRows(t *testing.T) {
	db := New()
	mustExec(t, db, "CREATE TABLE t (a INT, b VARCHAR)")
	n, err := db.InsertRows("t", []value.Row{
		{value.NewInt(1), value.NewText("x")},
		{value.NewInt(2), value.NewText("y")},
	})
	if err != nil || n != 2 {
		t.Fatalf("bulk insert: %d %v", n, err)
	}
	if _, err := db.InsertRows("nope", nil); err == nil {
		t.Error("bulk insert into missing table should fail")
	}
}

func TestViewMaterializationCachedPerStatement(t *testing.T) {
	// correlated NOT EXISTS over a view must not be quadratic in view
	// materializations; just verify correctness at a size that would be
	// visibly slow otherwise.
	db := New()
	mustExec(t, db, "CREATE TABLE nums (n INT)")
	var sb strings.Builder
	sb.WriteString("INSERT INTO nums VALUES (0)")
	for i := 1; i < 300; i++ {
		sb.WriteString(", (")
		sb.WriteString(value.NewInt(int64(i)).String())
		sb.WriteString(")")
	}
	mustExec(t, db, sb.String())
	mustExec(t, db, "CREATE VIEW v AS SELECT n FROM nums")
	res := mustQuery(t, db, `SELECT n FROM v a WHERE NOT EXISTS (
		SELECT 1 FROM v b WHERE b.n < a.n)`)
	if len(res.Rows) != 1 || res.Rows[0][0].I != 0 {
		t.Errorf("min via not exists: %v", res.Rows)
	}
}

func TestAmbiguousColumnPrefersQualified(t *testing.T) {
	db := New()
	mustExec(t, db, "CREATE TABLE a (id INT)")
	mustExec(t, db, "CREATE TABLE b (id INT)")
	mustExec(t, db, "INSERT INTO a VALUES (1)")
	mustExec(t, db, "INSERT INTO b VALUES (2)")
	res := mustQuery(t, db, "SELECT a.id, b.id FROM a, b")
	if res.Rows[0][0].I != 1 || res.Rows[0][1].I != 2 {
		t.Errorf("qualified: %v", res.Rows[0])
	}
}

func TestSelectDetailedQualifiers(t *testing.T) {
	db := newCarsDB(t)
	sel, err := parseSelect("SELECT c.Make, Price FROM Cars c")
	if err != nil {
		t.Fatal(err)
	}
	det, err := db.SelectDetailed(sel)
	if err != nil {
		t.Fatal(err)
	}
	if len(det.Cols) != 2 || det.Cols[0].Name != "Make" {
		t.Fatalf("cols: %v", det.Cols)
	}
	if len(det.Rows) != 3 {
		t.Fatalf("rows: %d", len(det.Rows))
	}
	// preference queries rejected here too
	pref, _ := parseSelect("SELECT * FROM Cars PREFERRING LOWEST(Price)")
	if _, err := db.SelectDetailed(pref); err == nil {
		t.Error("preference should be rejected")
	}
}

func parseSelect(src string) (*ast.Select, error) {
	stmt, err := parser.Parse(src)
	if err != nil {
		return nil, err
	}
	return stmt.(*ast.Select), nil
}

func TestRunnerSubquery(t *testing.T) {
	db := newCarsDB(t)
	r := db.Runner()
	sel, _ := parseSelect("SELECT COUNT(*) FROM Cars")
	rows, err := r.Subquery(sel, expr.MapEnv{})
	if err != nil || len(rows) != 1 || rows[0][0].I != 3 {
		t.Fatalf("runner: %v %v", rows, err)
	}
	pref, _ := parseSelect("SELECT * FROM Cars PREFERRING LOWEST(Price)")
	if _, err := r.Subquery(pref, expr.MapEnv{}); err == nil {
		t.Error("preference subquery should be rejected")
	}
}

func TestCatalogAccessor(t *testing.T) {
	db := newCarsDB(t)
	if _, ok := db.Catalog().Table("cars"); !ok {
		t.Error("catalog lookup")
	}
}

func TestOrderByMixedKindsAndNulls(t *testing.T) {
	db := New()
	mustExec(t, db, "CREATE TABLE t (a INT)")
	mustExec(t, db, "INSERT INTO t VALUES (2), (NULL), (1)")
	res := mustQuery(t, db, "SELECT a FROM t ORDER BY a")
	if !res.Rows[0][0].IsNull() || res.Rows[1][0].I != 1 {
		t.Errorf("nulls-first asc: %v", res.Rows)
	}
	res = mustQuery(t, db, "SELECT a FROM t ORDER BY a DESC")
	if !res.Rows[2][0].IsNull() || res.Rows[0][0].I != 2 {
		t.Errorf("nulls-last desc: %v", res.Rows)
	}
}

func TestOrderByInGroupedQuery(t *testing.T) {
	db := New()
	mustExec(t, db, "CREATE TABLE s (r VARCHAR, v INT)")
	mustExec(t, db, "INSERT INTO s VALUES ('a', 1), ('a', 2), ('b', 9)")
	res := mustQuery(t, db, "SELECT r, SUM(v) FROM s GROUP BY r ORDER BY SUM(v) DESC")
	if res.Rows[0][0].S != "b" {
		t.Errorf("order by aggregate: %v", res.Rows)
	}
	// DISTINCT over grouped output
	res = mustQuery(t, db, "SELECT DISTINCT COUNT(*) FROM s GROUP BY r")
	if len(res.Rows) != 2 {
		t.Errorf("distinct grouped: %v", res.Rows)
	}
}

func TestGroupedLimit(t *testing.T) {
	db := New()
	mustExec(t, db, "CREATE TABLE s (r VARCHAR, v INT)")
	mustExec(t, db, "INSERT INTO s VALUES ('a', 1), ('b', 2), ('c', 3)")
	res := mustQuery(t, db, "SELECT r, SUM(v) FROM s GROUP BY r ORDER BY r LIMIT 2")
	if len(res.Rows) != 2 || res.Rows[0][0].S != "a" {
		t.Errorf("grouped limit: %v", res.Rows)
	}
}

func TestEquiJoinSwappedColumns(t *testing.T) {
	db := New()
	mustExec(t, db, "CREATE TABLE a (x INT); CREATE TABLE b (y INT)")
	mustExec(t, db, "INSERT INTO a VALUES (1), (2); INSERT INTO b VALUES (2), (3)")
	// swapped operands still use the hash join
	res := mustQuery(t, db, "SELECT x FROM a JOIN b ON b.y = a.x")
	if len(res.Rows) != 1 || res.Rows[0][0].I != 2 {
		t.Errorf("swapped equi join: %v", res.Rows)
	}
}

func TestJoinOnNullsNeverMatch(t *testing.T) {
	db := New()
	mustExec(t, db, "CREATE TABLE a (x INT); CREATE TABLE b (y INT)")
	mustExec(t, db, "INSERT INTO a VALUES (NULL), (1); INSERT INTO b VALUES (NULL), (1)")
	res := mustQuery(t, db, "SELECT * FROM a JOIN b ON a.x = b.y")
	if len(res.Rows) != 1 {
		t.Errorf("null join keys must not match: %v", res.Rows)
	}
}

func TestCreateViewRejectsPreference(t *testing.T) {
	db := newCarsDB(t)
	if _, err := db.Exec("CREATE VIEW v AS SELECT * FROM Cars PREFERRING LOWEST(Price)"); err == nil {
		t.Error("preference view should be rejected by the engine")
	}
	mustExec(t, db, "CREATE VIEW v AS SELECT * FROM Cars")
	if _, err := db.Exec("CREATE VIEW v AS SELECT * FROM Cars"); err == nil {
		t.Error("duplicate view should fail")
	}
	mustExec(t, db, "DROP VIEW v")
	if _, err := db.Exec("DROP VIEW v"); err == nil {
		t.Error("dropping missing view should fail")
	}
	mustExec(t, db, "DROP VIEW IF EXISTS v")
}

func TestViewOverViewAndBrokenView(t *testing.T) {
	db := newCarsDB(t)
	mustExec(t, db, "CREATE VIEW v1 AS SELECT Make, Price FROM Cars")
	mustExec(t, db, "CREATE VIEW v2 AS SELECT Make FROM v1 WHERE Price > 30000")
	res := mustQuery(t, db, "SELECT COUNT(*) FROM v2")
	if res.Rows[0][0].I != 2 {
		t.Errorf("view over view: %v", res.Rows)
	}
	// a view over a dropped table errors at query time
	mustExec(t, db, "CREATE TABLE tmp (a INT)")
	mustExec(t, db, "CREATE VIEW broken AS SELECT * FROM tmp")
	mustExec(t, db, "DROP TABLE tmp")
	if _, err := db.Exec("SELECT * FROM broken"); err == nil {
		t.Error("broken view should error")
	}
}

func TestCaseInOrderByAndWhere(t *testing.T) {
	db := newCarsDB(t)
	res := mustQuery(t, db, `SELECT Make FROM Cars
		ORDER BY CASE WHEN Diesel = 'yes' THEN 0 ELSE 1 END, Make`)
	if res.Rows[0][0].S != "BMW" {
		t.Errorf("diesel first: %v", res.Rows)
	}
}

func TestMinMaxOverText(t *testing.T) {
	db := newCarsDB(t)
	res := mustQuery(t, db, "SELECT MIN(Make), MAX(Make) FROM Cars")
	if res.Rows[0][0].S != "Audi" || res.Rows[0][1].S != "Volkswagen" {
		t.Errorf("min/max text: %v", res.Rows[0])
	}
}

func TestAvgOfInts(t *testing.T) {
	db := New()
	mustExec(t, db, "CREATE TABLE t (a INT); INSERT INTO t VALUES (1), (2)")
	res := mustQuery(t, db, "SELECT AVG(a) FROM t")
	if res.Rows[0][0].Num() != 1.5 {
		t.Errorf("avg: %v", res.Rows[0][0])
	}
}

func TestSumFloatMix(t *testing.T) {
	db := New()
	mustExec(t, db, "CREATE TABLE t (a FLOAT); INSERT INTO t VALUES (1.5), (2)")
	res := mustQuery(t, db, "SELECT SUM(a) FROM t")
	if res.Rows[0][0].Num() != 3.5 {
		t.Errorf("sum: %v", res.Rows[0][0])
	}
}

func TestSubqueryDepthLimit(t *testing.T) {
	db := New()
	mustExec(t, db, "CREATE TABLE t (a INT); INSERT INTO t VALUES (1)")
	// build a deeply nested scalar subquery
	q := "a"
	for i := 0; i < 70; i++ {
		q = "(SELECT " + q + " FROM t)"
	}
	if _, err := db.Exec("SELECT " + q); err == nil {
		t.Error("deep nesting should be limited")
	}
}

// TestCompositeIndexNotProbed is the regression test for index selection:
// a composite index cannot answer a single-column equality probe
// (Index.Lookup needs an exact one-column key), so the planner must not
// pick it — the query must still return its rows via a sequential scan.
func TestCompositeIndexNotProbed(t *testing.T) {
	db := New()
	if _, err := db.Exec(`CREATE TABLE jobs (region VARCHAR, salary INT);
		INSERT INTO jobs VALUES ('Bayern', 100), ('Sachsen', 200);
		CREATE INDEX idx_rs ON jobs (region, salary)`); err != nil {
		t.Fatal(err)
	}
	res, err := db.Exec(`SELECT salary FROM jobs WHERE region = 'Bayern'`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].I != 100 {
		t.Fatalf("rows = %v, want [(100)]", res.Rows)
	}
	// A single-column index on the same leading column must win and still
	// return the same result.
	if _, err := db.Exec(`CREATE INDEX idx_r ON jobs (region)`); err != nil {
		t.Fatal(err)
	}
	res, err = db.Exec(`SELECT salary FROM jobs WHERE region = 'Bayern'`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].I != 100 {
		t.Fatalf("rows with index = %v, want [(100)]", res.Rows)
	}
}

// TestHashJoinCrossKindEquality is the regression test for comma-join hash
// upgrades: `a = b` across numeric kinds (INT vs BOOL/DATE) must match
// exactly like the nested-loop evaluation of the same predicate.
func TestHashJoinCrossKindEquality(t *testing.T) {
	db := New()
	if _, err := db.Exec(`CREATE TABLE t1 (a INT); CREATE TABLE t2 (b BOOLEAN);
		INSERT INTO t1 VALUES (1), (0), (7);
		INSERT INTO t2 VALUES (TRUE), (FALSE)`); err != nil {
		t.Fatal(err)
	}
	res, err := db.Exec(`SELECT a FROM t1, t2 WHERE a = b`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v, want a=1 and a=0", res.Rows)
	}
	// The equivalent non-upgradable predicate must agree.
	res2, err := db.Exec(`SELECT a FROM t1, t2 WHERE a + 0 = b`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Rows) != len(res.Rows) {
		t.Fatalf("hash join %v vs nested loop %v", res.Rows, res2.Rows)
	}
}
