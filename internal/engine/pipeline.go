package engine

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"repro/internal/ast"
	"repro/internal/exec"
	"repro/internal/expr"
	"repro/internal/plan"
	"repro/internal/value"
)

// This file wires the engine to the plan/exec pipeline: SELECT statements
// are compiled to a logical plan (internal/plan) and executed by the
// Volcano-style pull operators of internal/exec. The grouped/aggregate
// path still materializes, but its FROM/WHERE input comes through the same
// pipeline.

// colrefsOf converts a plan schema to the engine's column labels.
func colrefsOf(s plan.Schema) []colref {
	out := make([]colref, len(s))
	for i, c := range s {
		out[i] = colref{qual: c.Qual, name: c.Name}
	}
	return out
}

// schemaOf converts engine column labels to a plan schema.
func schemaOf(cols []colref) plan.Schema {
	out := make(plan.Schema, len(cols))
	for i, c := range cols {
		out[i] = plan.ColRef{Qual: c.qual, Name: c.name}
	}
	return out
}

// plannerFor returns a planner bound to this statement: views materialize
// once per statement (the view cache), FROM subqueries evaluate recursively
// under the given correlation environment.
func (ctx *execContext) plannerFor(outer expr.Env) *plan.Planner {
	return &plan.Planner{
		Catalog: ctx.db.cat,
		Materialize: func(sel *ast.Select, viewName string) (plan.Schema, []value.Row, error) {
			if viewName != "" {
				key := strings.ToLower(viewName)
				rel, cached := ctx.viewCache[key]
				if !cached {
					var err error
					rel, err = ctx.evalSelect(sel, nil)
					if err != nil {
						return nil, nil, fmt.Errorf("view %s: %w", viewName, err)
					}
					ctx.viewCache[key] = rel
				}
				return schemaOf(rel.cols), rel.rows, nil
			}
			rel, err := ctx.evalSelect(sel, outer)
			if err != nil {
				return nil, nil, err
			}
			return schemaOf(rel.cols), rel.rows, nil
		},
	}
}

// execEnv builds the operator environment sharing this statement's
// evaluator, work counters and cancellation hook.
func (ctx *execContext) execEnv(ev *expr.Evaluator, outer expr.Env) *exec.Env {
	return &exec.Env{Ev: ev, Outer: outer, Stats: ctx.stats, Stop: ctx.stop()}
}

// ---------------------------------------------------------------------------
// Public pipeline handle (used by the preference layer)
// ---------------------------------------------------------------------------

// Pipeline is a planned SELECT ready for pull-based execution. The
// preference layer wraps the plan root (a plan.BMO node) before building;
// plain consumers build it as-is and stream.
type Pipeline struct {
	ctx   *execContext
	ev    *expr.Evaluator
	node  plan.Node
	stats *exec.Stats
	rec   *exec.NodeRec // per-operator recorder; nil = recording off
}

// Pipeline plans a plain, non-grouped SELECT for streaming execution.
// Grouped/aggregate queries (which must materialize) and preference
// queries are rejected.
func (db *DB) Pipeline(sel *ast.Select) (*Pipeline, error) {
	return db.PipelineArgs(context.Background(), sel, nil)
}

// PipelineArgs is Pipeline with a cancellation context and bind
// arguments: parameters in the statement are evaluated per pull, and
// cancelling qctx stops the pipeline's scans.
func (db *DB) PipelineArgs(qctx context.Context, sel *ast.Select, params []value.Value) (*Pipeline, error) {
	if sel.HasPreference() || sel.ButOnly != nil || len(sel.Grouping) > 0 {
		return nil, ErrPreferenceQuery
	}
	if len(sel.GroupBy) > 0 || hasAggregates(sel) {
		return nil, ErrNotStreamable
	}
	if sel.HasLimitParam() {
		return nil, fmt.Errorf("engine: unresolved bind parameter in LIMIT/OFFSET (parameters are supported only in the outermost LIMIT/OFFSET)")
	}
	ctx := newExecContextArgs(db, qctx, params)
	ev := ctx.evaluator()
	node, err := ctx.plannerFor(nil).PlanSelect(sel)
	if err != nil {
		return nil, err
	}
	return &Pipeline{ctx: ctx, ev: ev, node: node, stats: ctx.stats}, nil
}

// ErrNotStreamable marks statement shapes the streaming planner cannot
// compile at all (grouped/aggregate queries); unlike data-dependent
// plan failures (a table that doesn't exist yet), it never goes away
// for a given statement.
var ErrNotStreamable = errors.New("engine: grouped/aggregate queries do not stream")

// PlanStream compiles a plain streaming SELECT to its logical plan
// without executing it — the half of the work a prepared statement can
// cache. Grouped/aggregate and preference queries are rejected (they do
// not stream; see Pipeline) with shape errors (ErrNotStreamable,
// ErrPreferenceQuery); other failures are data-dependent and may
// succeed on retry. Views referenced by the statement are materialized
// into the plan, so cached plans must be invalidated when the data
// changes (the core layer's write epoch does this).
func (db *DB) PlanStream(sel *ast.Select) (plan.Node, error) {
	if sel.HasPreference() || sel.ButOnly != nil || len(sel.Grouping) > 0 {
		return nil, ErrPreferenceQuery
	}
	if len(sel.GroupBy) > 0 || hasAggregates(sel) || sel.HasLimitParam() {
		// A parameterized LIMIT/OFFSET changes the plan's Limit node per
		// execution, so the plan cannot be cached; the shape error latches
		// the statement onto the plan-per-execution path.
		return nil, ErrNotStreamable
	}
	ctx := newExecContext(db)
	return ctx.plannerFor(nil).PlanSelect(sel)
}

// ExecPlan executes a previously compiled plan with a fresh statement
// context: the re-execution half of a prepared statement. The plan is
// read-only during execution, so many goroutines may ExecPlan the same
// node concurrently.
func (db *DB) ExecPlan(node plan.Node) (*Result, error) {
	return db.ExecPlanArgs(context.Background(), node, nil)
}

// ExecPlanArgs re-executes a cached plan with fresh bind arguments under a
// cancellation context — the step that turns the prepared-statement cache
// into a plan cache for parameterized workloads: one plan per SQL text,
// re-run with different argument values (probe keys, filter constants) on
// every execution.
func (db *DB) ExecPlanArgs(qctx context.Context, node plan.Node, params []value.Value) (*Result, error) {
	ctx := newExecContextArgs(db, qctx, params)
	ev := ctx.evaluator()
	op, err := exec.Build(node, ctx.execEnv(ev, nil))
	if err != nil {
		return nil, err
	}
	rows, err := exec.Drain(op)
	if err != nil {
		return nil, err
	}
	sch := node.Schema()
	cols := make([]string, len(sch))
	for i, c := range sch {
		cols[i] = c.Name
	}
	return &Result{Columns: cols, Rows: rows, Stats: ctx.stats}, nil
}

// Node returns the plan root, for wrapping or EXPLAIN formatting.
func (p *Pipeline) Node() plan.Node { return p.node }

// Columns returns the qualified output columns of the planned query.
func (p *Pipeline) Columns() []ColInfo {
	sch := p.node.Schema()
	out := make([]ColInfo, len(sch))
	for i, c := range sch {
		out[i] = ColInfo{Qualifier: c.Qual, Name: c.Name}
	}
	return out
}

// Stats exposes the pipeline's work counters (rows scanned, index probes).
func (p *Pipeline) Stats() *exec.Stats { return p.stats }

// EnableNodeStats turns on per-operator instrumentation for operators
// built by this pipeline: every Build wraps the operator tree in
// recorders accumulating rows and wall time per plan node. Must be
// called before Build; the returned recorder maps plan nodes to their
// runtime counters (EXPLAIN ANALYZE's per-node annotations).
func (p *Pipeline) EnableNodeStats() *exec.NodeRec {
	if p.rec == nil {
		p.rec = exec.NewNodeRec()
	}
	return p.rec
}

// Build compiles root into an operator tree bound to this statement's
// context; a nil root builds the planned query itself.
func (p *Pipeline) Build(root plan.Node) (exec.Operator, error) {
	if root == nil {
		root = p.node
	}
	env := p.ctx.execEnv(p.ev, nil)
	env.Rec = p.rec
	return exec.Build(root, env)
}
