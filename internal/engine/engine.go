// Package engine implements a standard-SQL (SQL92 subset) execution engine
// over the in-memory storage layer: scans with index probes, joins,
// grouping and aggregation, DISTINCT, ORDER BY, LIMIT, views, and
// correlated subqueries (EXISTS / IN / scalar).
//
// In the paper's architecture (§3.1) this is the host "standard SQL DB
// system" that the Preference SQL optimizer re-writes into. The engine
// deliberately rejects PREFERRING queries: preference semantics lives one
// layer up, in internal/core, either natively (internal/bmo) or via the
// SQL92 rewriting of internal/rewrite.
package engine

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/ast"
	"repro/internal/exec"
	"repro/internal/expr"
	"repro/internal/parser"
	"repro/internal/storage"
	"repro/internal/value"
)

// ErrPreferenceQuery is returned when a PREFERRING query reaches the plain
// SQL engine; such queries must go through the preference layer.
var ErrPreferenceQuery = errors.New("engine: PREFERRING queries require the preference layer (internal/core)")

// Result is the outcome of one statement.
type Result struct {
	Columns  []string    // result column names (SELECT only)
	Rows     []value.Row // result rows (SELECT only)
	Affected int         // rows changed (INSERT/UPDATE/DELETE)
	// Stats, when non-nil, exposes the statement's pipeline work counters
	// to the observability layer (metrics flush, LastStats, slow-query
	// log); it is not part of the result data.
	Stats *exec.Stats
}

// DB is one in-memory database instance. It is safe for concurrent readers;
// writers are serialized by the catalog's lock granularity (statement level).
type DB struct {
	cat *storage.Catalog
}

// New returns an empty database.
func New() *DB { return &DB{cat: storage.NewCatalog()} }

// NewOn returns a database over an existing catalog — the seam through
// which the durable backend (internal/storage/disk) hands a recovered,
// logging catalog to the SQL layers.
func NewOn(cat *storage.Catalog) *DB { return &DB{cat: cat} }

// Catalog exposes the underlying catalog (used by the preference layer and
// data generators for bulk loading).
func (db *DB) Catalog() *storage.Catalog { return db.cat }

// Exec parses and runs a ';'-separated script, returning the result of the
// last statement.
func (db *DB) Exec(sql string) (*Result, error) {
	stmts, err := parser.ParseAll(sql)
	if err != nil {
		return nil, err
	}
	if len(stmts) == 0 {
		return &Result{}, nil
	}
	var res *Result
	for _, s := range stmts {
		res, err = db.ExecStmt(s)
		if err != nil {
			return nil, err
		}
	}
	return res, nil
}

// ExecStmt runs one parsed statement.
func (db *DB) ExecStmt(stmt ast.Stmt) (*Result, error) {
	return db.ExecStmtArgs(context.Background(), stmt, nil)
}

// ExecStmtArgs runs one parsed statement under a cancellation context with
// positional bind arguments: ast.Param nodes in the statement evaluate to
// params[Index], and cancelling qctx stops the statement's scans.
func (db *DB) ExecStmtArgs(qctx context.Context, stmt ast.Stmt, params []value.Value) (*Result, error) {
	ec := newExecContextArgs(db, qctx, params)
	res, err := db.execStmtWith(ec, stmt)
	if res != nil && res.Stats == nil {
		res.Stats = ec.stats
	}
	return res, err
}

func (db *DB) execStmtWith(ec *execContext, stmt ast.Stmt) (*Result, error) {
	switch s := stmt.(type) {
	case *ast.Select:
		return db.selectWith(ec, s)
	case *ast.Insert:
		return db.insert(ec, s)
	case *ast.Update:
		return db.update(ec, s)
	case *ast.Delete:
		return db.delete(ec, s)
	case *ast.CreateTable:
		return db.createTable(s)
	case *ast.CreateView:
		return db.createView(s)
	case *ast.CreateIndex:
		return db.createIndex(s)
	case *ast.Drop:
		return db.drop(s)
	}
	return nil, fmt.Errorf("engine: unsupported statement %T", stmt)
}

// Select runs a SELECT statement (no PREFERRING clause).
func (db *DB) Select(sel *ast.Select) (*Result, error) {
	return db.SelectArgs(context.Background(), sel, nil)
}

// SelectArgs is Select with a cancellation context and bind arguments.
func (db *DB) SelectArgs(qctx context.Context, sel *ast.Select, params []value.Value) (*Result, error) {
	return db.selectWith(newExecContextArgs(db, qctx, params), sel)
}

func (db *DB) selectWith(ec *execContext, sel *ast.Select) (*Result, error) {
	if sel.HasPreference() || sel.ButOnly != nil || len(sel.Grouping) > 0 {
		return nil, ErrPreferenceQuery
	}
	rel, err := ec.evalSelect(sel, nil)
	if err != nil {
		return nil, err
	}
	return &Result{Columns: rel.names(), Rows: rel.rows, Stats: ec.stats}, nil
}

// ColInfo labels one output column with its qualifier (table name or
// alias; empty for computed columns) and name.
type ColInfo struct {
	Qualifier string
	Name      string
}

// DetailedResult is a Result that keeps column qualifiers, needed by the
// preference layer to bind qualified column references.
type DetailedResult struct {
	Cols []ColInfo
	Rows []value.Row
}

// SelectDetailed runs a plain SELECT and returns qualified column labels.
func (db *DB) SelectDetailed(sel *ast.Select) (*DetailedResult, error) {
	return db.SelectDetailedArgs(context.Background(), sel, nil)
}

// SelectDetailedArgs is SelectDetailed with a cancellation context and
// bind arguments.
func (db *DB) SelectDetailedArgs(qctx context.Context, sel *ast.Select, params []value.Value) (*DetailedResult, error) {
	if sel.HasPreference() || sel.ButOnly != nil || len(sel.Grouping) > 0 {
		return nil, ErrPreferenceQuery
	}
	ec := newExecContextArgs(db, qctx, params)
	rel, err := ec.evalSelect(sel, nil)
	if err != nil {
		return nil, err
	}
	cols := make([]ColInfo, len(rel.cols))
	for i, c := range rel.cols {
		cols[i] = ColInfo{Qualifier: c.qual, Name: c.name}
	}
	return &DetailedResult{Cols: cols, Rows: rel.rows}, nil
}

// Runner returns a subquery runner bound to this database, for expression
// evaluation outside the engine (the preference layer's binder).
func (db *DB) Runner() expr.SubqueryRunner { return newExecContext(db) }

// RunnerArgs is Runner with a cancellation context and bind arguments, so
// subqueries inside preference terms and quality filters see the same
// execution state as the enclosing statement.
func (db *DB) RunnerArgs(qctx context.Context, params []value.Value) expr.SubqueryRunner {
	return newExecContextArgs(db, qctx, params)
}

// ---------------------------------------------------------------------------
// Relations and environments
// ---------------------------------------------------------------------------

// colref labels one column of an intermediate relation with its qualifier
// (table name or alias) and column name.
type colref struct {
	qual string
	name string
}

type relation struct {
	cols []colref
	rows []value.Row
}

func (r *relation) names() []string {
	out := make([]string, len(r.cols))
	for i, c := range r.cols {
		out[i] = c.name
	}
	return out
}

// colIndex resolves a (table, name) reference; table may be empty.
// The second return counts matches (for ambiguity detection).
func (r *relation) colIndex(table, name string) (int, int) {
	idx, n := -1, 0
	for i, c := range r.cols {
		if !strings.EqualFold(c.name, name) {
			continue
		}
		if table != "" && !strings.EqualFold(c.qual, table) {
			continue
		}
		if idx < 0 {
			idx = i
		}
		n++
	}
	return idx, n
}

// rowEnv resolves columns of one row of a relation, with aggregate
// interception and an optional outer (correlation) environment.
type rowEnv struct {
	rel   *relation
	row   value.Row
	aggs  map[string]value.Value // precomputed aggregates keyed by SQL text
	outer expr.Env
}

func (e *rowEnv) Col(table, name string) (value.Value, bool) {
	if idx, n := e.rel.colIndex(table, name); n > 0 {
		return e.row[idx], true
	}
	if e.outer != nil {
		return e.outer.Col(table, name)
	}
	return value.Value{}, false
}

func (e *rowEnv) Func(fc *ast.FuncCall) (value.Value, bool, error) {
	if e.aggs != nil {
		if v, ok := e.aggs[fc.SQL()]; ok {
			return v, true, nil
		}
	}
	if e.outer != nil {
		return e.outer.Func(fc)
	}
	return value.Value{}, false, nil
}

// ---------------------------------------------------------------------------
// Execution context
// ---------------------------------------------------------------------------

// execContext carries per-statement state: the view materialization cache
// that keeps correlated subqueries from re-materializing the same view for
// every outer row, plus the execution's cancellation context and bind
// arguments.
type execContext struct {
	db        *DB
	viewCache map[string]*relation
	depth     int
	stats     *exec.Stats
	qctx      context.Context // nil = not cancellable
	params    []value.Value   // positional bind arguments
}

func newExecContext(db *DB) *execContext {
	return &execContext{db: db, viewCache: map[string]*relation{}, stats: &exec.Stats{}}
}

func newExecContextArgs(db *DB, qctx context.Context, params []value.Value) *execContext {
	ec := newExecContext(db)
	ec.qctx, ec.params = qctx, params
	return ec
}

// evaluator builds an expression evaluator bound to this execution: its
// subquery runner shares the view cache and its Params resolve ast.Param
// nodes against the execution's arguments.
func (ctx *execContext) evaluator() *expr.Evaluator {
	return &expr.Evaluator{Runner: ctx, Params: ctx.params}
}

// stop is the exec.Env cancellation hook; nil when the execution carries
// no cancellable context.
func (ctx *execContext) stop() func() error {
	if ctx.qctx == nil || ctx.qctx.Done() == nil {
		return nil
	}
	qctx := ctx.qctx
	return func() error { return qctx.Err() }
}

// Subquery implements expr.SubqueryRunner.
func (ctx *execContext) Subquery(sel *ast.Select, env expr.Env) ([]value.Row, error) {
	if sel.HasPreference() {
		return nil, ErrPreferenceQuery
	}
	rel, err := ctx.evalSelect(sel, env)
	if err != nil {
		return nil, err
	}
	return rel.rows, nil
}

const maxSubqueryDepth = 64

// evalSelect evaluates a plain SELECT with an optional correlation env.
// The statement is compiled to a logical plan and run on the pull-operator
// pipeline; grouped/aggregate queries keep the materializing evaluator but
// draw their filtered FROM/WHERE input from the same pipeline.
func (ctx *execContext) evalSelect(sel *ast.Select, outer expr.Env) (*relation, error) {
	if sel.HasPreference() {
		return nil, ErrPreferenceQuery
	}
	if sel.HasLimitParam() {
		// Top-level LIMIT/OFFSET parameters are resolved by the core layer
		// before execution; one reaching the engine sits in a nested query
		// block, where late binding is not supported.
		return nil, fmt.Errorf("engine: unresolved bind parameter in LIMIT/OFFSET (parameters are supported only in the outermost LIMIT/OFFSET)")
	}
	ctx.depth++
	defer func() { ctx.depth-- }()
	if ctx.depth > maxSubqueryDepth {
		return nil, fmt.Errorf("engine: subquery nesting too deep")
	}

	ev := ctx.evaluator()

	if len(sel.GroupBy) > 0 || hasAggregates(sel) {
		node, err := ctx.plannerFor(outer).PlanSource(sel.From, sel.Where, false)
		if err != nil {
			return nil, err
		}
		op, err := exec.Build(node, ctx.execEnv(ev, outer))
		if err != nil {
			return nil, err
		}
		filtered, err := exec.Drain(op)
		if err != nil {
			return nil, err
		}
		src := &relation{cols: colrefsOf(node.Schema())}
		return ctx.evalGrouped(sel, src, filtered, outer, ev)
	}

	node, err := ctx.plannerFor(outer).PlanSelect(sel)
	if err != nil {
		return nil, err
	}
	op, err := exec.Build(node, ctx.execEnv(ev, outer))
	if err != nil {
		return nil, err
	}
	rows, err := exec.Drain(op)
	if err != nil {
		return nil, err
	}
	return &relation{cols: colrefsOf(node.Schema()), rows: rows}, nil
}

func applyLimit(rel *relation, limit, offset int64) {
	if offset > 0 {
		if offset >= int64(len(rel.rows)) {
			rel.rows = nil
		} else {
			rel.rows = rel.rows[offset:]
		}
	}
	if limit >= 0 && int64(len(rel.rows)) > limit {
		rel.rows = rel.rows[:limit]
	}
}

func distinctRows(rows []value.Row) []value.Row {
	seen := make(map[string]bool, len(rows))
	out := rows[:0:0]
	for _, r := range rows {
		k := r.Key()
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, r)
	}
	return out
}

// ---------------------------------------------------------------------------
// Projection and ORDER BY
// ---------------------------------------------------------------------------

// project computes the SELECT list for each row. aggs, when non-nil, binds
// pre-computed aggregates (grouped queries).
func (ctx *execContext) project(sel *ast.Select, src *relation, rows []value.Row,
	outer expr.Env, ev *expr.Evaluator, aggsPerRow []map[string]value.Value) (*relation, error) {

	var cols []colref
	type itemPlan struct {
		star     bool
		starQual string
		expr     ast.Expr
	}
	var plans []itemPlan
	for _, it := range sel.Items {
		if st, ok := it.Expr.(*ast.Star); ok {
			plans = append(plans, itemPlan{star: true, starQual: st.Table})
			for _, c := range src.cols {
				if st.Table == "" || strings.EqualFold(c.qual, st.Table) {
					cols = append(cols, c)
				}
			}
			continue
		}
		name := it.Alias
		if name == "" {
			if c, ok := it.Expr.(*ast.Column); ok {
				name = c.Name
			} else {
				name = it.Expr.SQL()
			}
		}
		plans = append(plans, itemPlan{expr: it.Expr})
		cols = append(cols, colref{name: name})
	}

	out := &relation{cols: cols, rows: make([]value.Row, 0, len(rows))}
	env := &rowEnv{rel: src, outer: outer}
	for ri, row := range rows {
		env.row = row
		if aggsPerRow != nil {
			env.aggs = aggsPerRow[ri]
		}
		outRow := make(value.Row, 0, len(cols))
		for _, p := range plans {
			if p.star {
				for i, c := range src.cols {
					if p.starQual == "" || strings.EqualFold(c.qual, p.starQual) {
						outRow = append(outRow, row[i])
					}
				}
				continue
			}
			v, err := ev.Eval(p.expr, env)
			if err != nil {
				return nil, err
			}
			outRow = append(outRow, v)
		}
		out.rows = append(out.rows, outRow)
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Aggregation
// ---------------------------------------------------------------------------

var aggregateNames = map[string]bool{
	"COUNT": true, "SUM": true, "AVG": true, "MIN": true, "MAX": true,
}

func isAggregate(name string) bool { return aggregateNames[strings.ToUpper(name)] }

// hasAggregates reports whether any select item or HAVING uses an aggregate.
func hasAggregates(sel *ast.Select) bool {
	for _, it := range sel.Items {
		if exprHasAggregate(it.Expr) {
			return true
		}
	}
	return sel.Having != nil && exprHasAggregate(sel.Having)
}

// HasAggregates is the exported form of hasAggregates, used by the
// distributed router to refuse aggregate queries over sharded tables
// (a per-shard aggregate is not the global aggregate).
func HasAggregates(sel *ast.Select) bool { return hasAggregates(sel) }

func exprHasAggregate(e ast.Expr) bool {
	found := false
	walkExpr(e, func(x ast.Expr) {
		if fc, ok := x.(*ast.FuncCall); ok && isAggregate(fc.Name) {
			found = true
		}
	})
	return found
}

// walkExpr visits e and all sub-expressions (not descending into subqueries).
func walkExpr(e ast.Expr, fn func(ast.Expr)) {
	if e == nil {
		return
	}
	fn(e)
	switch x := e.(type) {
	case *ast.Unary:
		walkExpr(x.X, fn)
	case *ast.Binary:
		walkExpr(x.L, fn)
		walkExpr(x.R, fn)
	case *ast.IsNull:
		walkExpr(x.X, fn)
	case *ast.InList:
		walkExpr(x.X, fn)
		for _, i := range x.List {
			walkExpr(i, fn)
		}
	case *ast.InSelect:
		walkExpr(x.X, fn)
	case *ast.Between:
		walkExpr(x.X, fn)
		walkExpr(x.Lo, fn)
		walkExpr(x.Hi, fn)
	case *ast.Like:
		walkExpr(x.X, fn)
		walkExpr(x.Pattern, fn)
	case *ast.Case:
		walkExpr(x.Operand, fn)
		for _, w := range x.Whens {
			walkExpr(w.When, fn)
			walkExpr(w.Then, fn)
		}
		walkExpr(x.Else, fn)
	case *ast.FuncCall:
		for _, a := range x.Args {
			walkExpr(a, fn)
		}
	}
}

// collectAggregates gathers all aggregate calls in the statement.
func collectAggregates(sel *ast.Select) []*ast.FuncCall {
	var out []*ast.FuncCall
	seen := map[string]bool{}
	collect := func(e ast.Expr) {
		walkExpr(e, func(x ast.Expr) {
			if fc, ok := x.(*ast.FuncCall); ok && isAggregate(fc.Name) {
				key := fc.SQL()
				if !seen[key] {
					seen[key] = true
					out = append(out, fc)
				}
			}
		})
	}
	for _, it := range sel.Items {
		collect(it.Expr)
	}
	if sel.Having != nil {
		collect(sel.Having)
	}
	for _, ob := range sel.OrderBy {
		collect(ob.Expr)
	}
	return out
}

func (ctx *execContext) evalGrouped(sel *ast.Select, src *relation,
	rows []value.Row, outer expr.Env, ev *expr.Evaluator) (*relation, error) {

	aggCalls := collectAggregates(sel)

	// Partition rows by GROUP BY key (single group if no GROUP BY).
	type group struct {
		rep  value.Row // representative row for group-by expressions
		rows []value.Row
	}
	var groups []*group
	index := map[string]*group{}
	env := &rowEnv{rel: src, outer: outer}
	for _, row := range rows {
		var key string
		if len(sel.GroupBy) > 0 {
			env.row = row
			keyVals := make(value.Row, len(sel.GroupBy))
			for i, ge := range sel.GroupBy {
				v, err := ev.Eval(ge, env)
				if err != nil {
					return nil, err
				}
				keyVals[i] = v
			}
			key = keyVals.Key()
		}
		g, ok := index[key]
		if !ok {
			g = &group{rep: row}
			index[key] = g
			groups = append(groups, g)
		}
		g.rows = append(g.rows, row)
	}
	// Aggregates without GROUP BY over an empty input yield one group.
	if len(groups) == 0 && len(sel.GroupBy) == 0 {
		groups = append(groups, &group{rep: make(value.Row, len(src.cols))})
	}

	// Compute aggregates per group.
	repRows := make([]value.Row, 0, len(groups))
	aggsPerRow := make([]map[string]value.Value, 0, len(groups))
	for _, g := range groups {
		aggs := map[string]value.Value{}
		for _, fc := range aggCalls {
			v, err := ctx.computeAggregate(fc, src, g.rows, outer, ev)
			if err != nil {
				return nil, err
			}
			aggs[fc.SQL()] = v
		}
		repRows = append(repRows, g.rep)
		aggsPerRow = append(aggsPerRow, aggs)
	}

	// HAVING filter on groups.
	if sel.Having != nil {
		keptRows := repRows[:0:0]
		keptAggs := aggsPerRow[:0:0]
		for i := range repRows {
			henv := &rowEnv{rel: src, row: repRows[i], aggs: aggsPerRow[i], outer: outer}
			ok, err := ev.EvalBool(sel.Having, henv)
			if err != nil {
				return nil, err
			}
			if ok {
				keptRows = append(keptRows, repRows[i])
				keptAggs = append(keptAggs, aggsPerRow[i])
			}
		}
		repRows, aggsPerRow = keptRows, keptAggs
	}

	out, err := ctx.project(sel, src, repRows, outer, ev, aggsPerRow)
	if err != nil {
		return nil, err
	}

	if len(sel.OrderBy) > 0 {
		if err := ctx.orderByGrouped(sel, out, src, repRows, aggsPerRow, outer, ev); err != nil {
			return nil, err
		}
	}
	if sel.Distinct {
		out.rows = distinctRows(out.rows)
	}
	applyLimit(out, sel.Limit, sel.Offset)
	return out, nil
}

func (ctx *execContext) orderByGrouped(sel *ast.Select, out, src *relation,
	repRows []value.Row, aggsPerRow []map[string]value.Value,
	outer expr.Env, ev *expr.Evaluator) error {

	type pair struct {
		keys value.Row
		idx  int
	}
	pairs := make([]pair, len(out.rows))
	for i := range out.rows {
		env := &expr.DualEnv{
			Primary:  &rowEnv{rel: out, row: out.rows[i]},
			Fallback: &rowEnv{rel: src, row: repRows[i], aggs: aggsPerRow[i], outer: outer},
		}
		keys := make(value.Row, len(sel.OrderBy))
		for k, ob := range sel.OrderBy {
			v, err := ev.Eval(ob.Expr, env)
			if err != nil {
				return err
			}
			keys[k] = v
		}
		pairs[i] = pair{keys: keys, idx: i}
	}
	sort.SliceStable(pairs, func(a, b int) bool {
		for k, ob := range sel.OrderBy {
			c := value.CompareNullsFirst(pairs[a].keys[k], pairs[b].keys[k])
			if c == 0 {
				continue
			}
			if ob.Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	sorted := make([]value.Row, len(pairs))
	for i, p := range pairs {
		sorted[i] = out.rows[p.idx]
	}
	out.rows = sorted
	return nil
}

func (ctx *execContext) computeAggregate(fc *ast.FuncCall, src *relation,
	rows []value.Row, outer expr.Env, ev *expr.Evaluator) (value.Value, error) {

	name := strings.ToUpper(fc.Name)
	if len(fc.Args) != 1 {
		return value.Value{}, fmt.Errorf("%s expects one argument", name)
	}
	arg := fc.Args[0]
	_, isStar := arg.(*ast.Star)
	if isStar && name != "COUNT" {
		return value.Value{}, fmt.Errorf("%s(*) is not valid", name)
	}

	env := &rowEnv{rel: src, outer: outer}
	var vals []value.Value
	for _, row := range rows {
		if isStar {
			vals = append(vals, value.NewInt(1))
			continue
		}
		env.row = row
		v, err := ev.Eval(arg, env)
		if err != nil {
			return value.Value{}, err
		}
		if v.IsNull() {
			continue // aggregates skip NULLs
		}
		vals = append(vals, v)
	}
	if fc.Distinct {
		seen := map[string]bool{}
		uniq := vals[:0:0]
		for _, v := range vals {
			k := v.Key()
			if seen[k] {
				continue
			}
			seen[k] = true
			uniq = append(uniq, v)
		}
		vals = uniq
	}

	switch name {
	case "COUNT":
		return value.NewInt(int64(len(vals))), nil
	case "SUM", "AVG":
		if len(vals) == 0 {
			return value.NewNull(), nil
		}
		allInt := true
		sum := 0.0
		for _, v := range vals {
			if !v.IsNumeric() {
				return value.Value{}, fmt.Errorf("%s requires numeric values", name)
			}
			if v.K != value.Int {
				allInt = false
			}
			sum += v.Num()
		}
		if name == "AVG" {
			return value.NewFloat(sum / float64(len(vals))), nil
		}
		if allInt {
			return value.NewInt(int64(sum)), nil
		}
		return value.NewFloat(sum), nil
	case "MIN", "MAX":
		if len(vals) == 0 {
			return value.NewNull(), nil
		}
		best := vals[0]
		for _, v := range vals[1:] {
			c, ok := value.Compare(v, best)
			if !ok {
				return value.Value{}, fmt.Errorf("%s over incomparable values", name)
			}
			if (name == "MIN" && c < 0) || (name == "MAX" && c > 0) {
				best = v
			}
		}
		return best, nil
	}
	return value.Value{}, fmt.Errorf("unknown aggregate %s", name)
}

// ---------------------------------------------------------------------------
// DML / DDL
// ---------------------------------------------------------------------------

func (db *DB) insert(ec *execContext, ins *ast.Insert) (*Result, error) {
	tbl, ok := db.cat.Table(ins.Table)
	if !ok {
		return nil, fmt.Errorf("engine: no such table: %s", ins.Table)
	}
	// Column mapping.
	colIdx := make([]int, 0, len(ins.Columns))
	for _, c := range ins.Columns {
		i := tbl.Schema.ColIndex(c)
		if i < 0 {
			return nil, fmt.Errorf("engine: table %s has no column %s", ins.Table, c)
		}
		colIdx = append(colIdx, i)
	}
	toFull := func(vals value.Row) (value.Row, error) {
		if len(ins.Columns) == 0 {
			return vals, nil
		}
		if len(vals) != len(colIdx) {
			return nil, fmt.Errorf("engine: INSERT has %d values for %d columns", len(vals), len(colIdx))
		}
		full := make(value.Row, len(tbl.Schema.Cols))
		for i, v := range vals {
			full[colIdx[i]] = v
		}
		return full, nil
	}

	// Rows are collected and applied as one batch: a multi-row INSERT
	// is atomic and, on the durable backend, costs one WAL record (one
	// group-commit fsync) instead of one per row.
	var batch []value.Row
	if ins.Sel != nil {
		res, err := db.selectWith(ec, ins.Sel)
		if err != nil {
			return nil, err
		}
		for _, row := range res.Rows {
			full, err := toFull(row)
			if err != nil {
				return nil, err
			}
			batch = append(batch, full)
		}
	} else {
		ev := ec.evaluator()
		env := expr.MapEnv{}
		for _, exprRow := range ins.Rows {
			vals := make(value.Row, len(exprRow))
			for i, e := range exprRow {
				v, err := ev.Eval(e, env)
				if err != nil {
					return nil, err
				}
				vals[i] = v
			}
			full, err := toFull(vals)
			if err != nil {
				return nil, err
			}
			batch = append(batch, full)
		}
	}
	if err := tbl.InsertBatch(batch); err != nil {
		return nil, err
	}
	return &Result{Affected: len(batch)}, nil
}

// InsertRows bulk-inserts pre-built rows; the fast path for data generators.
func (db *DB) InsertRows(table string, rows []value.Row) (int, error) {
	tbl, ok := db.cat.Table(table)
	if !ok {
		return 0, fmt.Errorf("engine: no such table: %s", table)
	}
	if err := tbl.InsertBatch(rows); err != nil {
		return 0, err
	}
	return len(rows), nil
}

func (db *DB) tableEnvMatcher(ec *execContext, tbl *storage.Table, where ast.Expr) func(value.Row) (bool, error) {
	ev := ec.evaluator()
	cols := make([]colref, len(tbl.Schema.Cols))
	for i, c := range tbl.Schema.Cols {
		cols[i] = colref{qual: tbl.Name, name: c.Name}
	}
	rel := &relation{cols: cols}
	return func(row value.Row) (bool, error) {
		if where == nil {
			return true, nil
		}
		env := &rowEnv{rel: rel, row: row}
		return ev.EvalBool(where, env)
	}
}

func (db *DB) update(ec *execContext, upd *ast.Update) (*Result, error) {
	tbl, ok := db.cat.Table(upd.Table)
	if !ok {
		return nil, fmt.Errorf("engine: no such table: %s", upd.Table)
	}
	setIdx := make([]int, len(upd.Sets))
	for i, s := range upd.Sets {
		idx := tbl.Schema.ColIndex(s.Column)
		if idx < 0 {
			return nil, fmt.Errorf("engine: table %s has no column %s", upd.Table, s.Column)
		}
		setIdx[i] = idx
	}
	ev := ec.evaluator()
	cols := make([]colref, len(tbl.Schema.Cols))
	for i, c := range tbl.Schema.Cols {
		cols[i] = colref{qual: tbl.Name, name: c.Name}
	}
	rel := &relation{cols: cols}

	n, err := tbl.Update(db.tableEnvMatcher(ec, tbl, upd.Where), func(row value.Row) (value.Row, error) {
		env := &rowEnv{rel: rel, row: row}
		for i, s := range upd.Sets {
			v, err := ev.Eval(s.Expr, env)
			if err != nil {
				return nil, err
			}
			row[setIdx[i]] = v
		}
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	return &Result{Affected: n}, nil
}

func (db *DB) delete(ec *execContext, del *ast.Delete) (*Result, error) {
	tbl, ok := db.cat.Table(del.Table)
	if !ok {
		return nil, fmt.Errorf("engine: no such table: %s", del.Table)
	}
	n, err := tbl.Delete(db.tableEnvMatcher(ec, tbl, del.Where))
	if err != nil {
		return nil, err
	}
	return &Result{Affected: n}, nil
}

func (db *DB) createTable(ct *ast.CreateTable) (*Result, error) {
	if _, exists := db.cat.Table(ct.Name); exists && ct.IfNotExists {
		return &Result{}, nil
	}
	cols := make([]storage.Column, len(ct.Cols))
	for i, c := range ct.Cols {
		cols[i] = storage.Column{Name: c.Name, Kind: c.Type, NotNull: c.NotNull, PrimaryKey: c.PrimaryKey}
	}
	tbl := storage.NewTable(ct.Name, storage.Schema{Cols: cols})
	if err := db.cat.CreateTable(tbl); err != nil {
		return nil, err
	}
	return &Result{}, nil
}

func (db *DB) createView(cv *ast.CreateView) (*Result, error) {
	if cv.Sel.HasPreference() {
		return nil, ErrPreferenceQuery
	}
	if err := db.cat.CreateView(cv.Name, cv.Sel); err != nil {
		return nil, err
	}
	return &Result{}, nil
}

func (db *DB) createIndex(ci *ast.CreateIndex) (*Result, error) {
	tbl, ok := db.cat.Table(ci.Table)
	if !ok {
		return nil, fmt.Errorf("engine: no such table: %s", ci.Table)
	}
	if _, err := tbl.CreateIndex(ci.Name, ci.Columns); err != nil {
		return nil, err
	}
	return &Result{}, nil
}

func (db *DB) drop(d *ast.Drop) (*Result, error) {
	switch d.Kind {
	case "TABLE":
		if !db.cat.DropTable(d.Name) && !d.IfExists {
			return nil, fmt.Errorf("engine: no such table: %s", d.Name)
		}
	case "VIEW":
		if !db.cat.DropView(d.Name) && !d.IfExists {
			return nil, fmt.Errorf("engine: no such view: %s", d.Name)
		}
	case "INDEX":
		dropped := false
		for _, name := range db.cat.TableNames() {
			tbl, _ := db.cat.Table(name)
			if tbl.DropIndex(d.Name) {
				dropped = true
				break
			}
		}
		if !dropped && !d.IfExists {
			return nil, fmt.Errorf("engine: no such index: %s", d.Name)
		}
	default:
		return nil, fmt.Errorf("engine: unsupported DROP %s", d.Kind)
	}
	return &Result{}, nil
}
