package driver

import (
	"database/sql"
	"database/sql/driver"
	"testing"
	"time"
)

func openDB(t *testing.T) *sql.DB {
	t.Helper()
	db, err := sql.Open("prefsql", ":memory:")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	// Force a single connection so the in-memory state is shared across
	// statements of a test.
	db.SetMaxOpenConns(1)
	return db
}

func TestStandardSQLThroughDriver(t *testing.T) {
	db := openDB(t)
	if _, err := db.Exec("CREATE TABLE t (a INT, b VARCHAR)"); err != nil {
		t.Fatal(err)
	}
	res, err := db.Exec("INSERT INTO t VALUES (1, 'x'), (2, 'y')")
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := res.RowsAffected(); n != 2 {
		t.Errorf("affected: %d", n)
	}
	rows, err := db.Query("SELECT a, b FROM t ORDER BY a")
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	var got []string
	for rows.Next() {
		var a int64
		var b string
		if err := rows.Scan(&a, &b); err != nil {
			t.Fatal(err)
		}
		got = append(got, b)
	}
	if len(got) != 2 || got[0] != "x" {
		t.Errorf("rows: %v", got)
	}
}

// The headline scenario: a legacy database/sql application issuing a
// PREFERRING query through the standard driver API.
func TestPreferenceQueryThroughDriver(t *testing.T) {
	db := openDB(t)
	if _, err := db.Exec(`CREATE TABLE trips (id INT, duration INT)`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`INSERT INTO trips VALUES (1, 7), (2, 13), (3, 15), (4, 28)`); err != nil {
		t.Fatal(err)
	}
	rows, err := db.Query(`SELECT id FROM trips PREFERRING duration AROUND 14 ORDER BY id`)
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	var ids []int64
	for rows.Next() {
		var id int64
		if err := rows.Scan(&id); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	if len(ids) != 2 || ids[0] != 2 || ids[1] != 3 {
		t.Errorf("ids: %v", ids)
	}
}

func TestPlaceholders(t *testing.T) {
	db := openDB(t)
	if _, err := db.Exec("CREATE TABLE p (a INT, b VARCHAR, c FLOAT, d BOOLEAN, e DATE)"); err != nil {
		t.Fatal(err)
	}
	when := time.Date(1999, time.July, 3, 0, 0, 0, 0, time.UTC)
	if _, err := db.Exec("INSERT INTO p VALUES (?, ?, ?, ?, ?)", 7, "O'Brien", 2.5, true, when); err != nil {
		t.Fatal(err)
	}
	var (
		a int64
		b string
		c float64
		d bool
		e time.Time
	)
	err := db.QueryRow("SELECT a, b, c, d, e FROM p WHERE a = ?", 7).Scan(&a, &b, &c, &d, &e)
	if err != nil {
		t.Fatal(err)
	}
	if a != 7 || b != "O'Brien" || c != 2.5 || !d || e.Day() != 3 {
		t.Errorf("scan: %v %v %v %v %v", a, b, c, d, e)
	}
}

func TestPlaceholderInPreference(t *testing.T) {
	db := openDB(t)
	if _, err := db.Exec(`CREATE TABLE trips (id INT, duration INT);`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`INSERT INTO trips VALUES (1, 7), (2, 13)`); err != nil {
		t.Fatal(err)
	}
	var id int64
	err := db.QueryRow("SELECT id FROM trips PREFERRING duration AROUND ?", 14).Scan(&id)
	if err != nil {
		t.Fatal(err)
	}
	if id != 2 {
		t.Errorf("id: %d", id)
	}
}

func TestNullScan(t *testing.T) {
	db := openDB(t)
	if _, err := db.Exec("CREATE TABLE n (a INT); INSERT INTO n VALUES (NULL)"); err != nil {
		t.Fatal(err)
	}
	var a sql.NullInt64
	if err := db.QueryRow("SELECT a FROM n").Scan(&a); err != nil {
		t.Fatal(err)
	}
	if a.Valid {
		t.Error("expected NULL")
	}
}

func TestNamedSharedInstance(t *testing.T) {
	db1, err := sql.Open("prefsql", "shared_test_db")
	if err != nil {
		t.Fatal(err)
	}
	defer db1.Close()
	if _, err := db1.Exec("CREATE TABLE s (a INT); INSERT INTO s VALUES (42)"); err != nil {
		t.Fatal(err)
	}
	db2, err := sql.Open("prefsql", "shared_test_db")
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	var a int64
	if err := db2.QueryRow("SELECT a FROM s").Scan(&a); err != nil {
		t.Fatal(err)
	}
	if a != 42 {
		t.Errorf("a: %d", a)
	}
}

func TestTransactionsAreAccepted(t *testing.T) {
	db := openDB(t)
	if _, err := db.Exec("CREATE TABLE t (a INT)"); err != nil {
		t.Fatal(err)
	}
	tx, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec("INSERT INTO t VALUES (1)"); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	var n int64
	if err := db.QueryRow("SELECT COUNT(*) FROM t").Scan(&n); err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("count: %d", n)
	}
}

func TestErrorsSurfaced(t *testing.T) {
	db := openDB(t)
	if _, err := db.Exec("SELEKT 1"); err == nil {
		t.Error("syntax error should surface")
	}
	if _, err := db.Exec("SELECT ? FROM nope"); err == nil {
		t.Error("missing args should surface")
	}
	if _, err := db.Query("SELECT 1 WHERE 'unterminated"); err == nil {
		t.Error("unterminated literal should surface")
	}
}

func TestBindHelpers(t *testing.T) {
	if n, _ := countPlaceholders("SELECT '?' , ?"); n != 1 {
		t.Errorf("placeholders inside strings must not count: %d", n)
	}
	if _, err := bind("SELECT 1", nil); err != nil {
		t.Errorf("no-arg bind: %v", err)
	}
	if _, err := bind("SELECT ?, ?", []driver.Value{int64(1)}); err == nil {
		t.Error("too few args should fail")
	}
	if _, err := bind("SELECT ?", []driver.Value{int64(1), int64(2)}); err == nil {
		t.Error("too many args should fail")
	}
	if _, err := literal(struct{}{}); err == nil {
		t.Error("unsupported type should fail")
	}
}

func TestDriverDBAccessorAndModeSwitch(t *testing.T) {
	d := &Driver{}
	conn, err := d.Open("accessor_test")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	inner := d.DB("accessor_test")
	if inner == nil {
		t.Fatal("DB accessor")
	}
	// switch the shared instance to rewrite mode; queries still work
	st, err := conn.Prepare("SELECT 1 + 1")
	if err != nil {
		t.Fatal(err)
	}
	rows, err := st.(interface {
		Query([]driver.Value) (driver.Rows, error)
	}).Query(nil)
	if err != nil {
		t.Fatal(err)
	}
	dest := make([]driver.Value, 1)
	if err := rows.Next(dest); err != nil {
		t.Fatal(err)
	}
	if dest[0].(int64) != 2 {
		t.Errorf("result: %v", dest[0])
	}
	if err := rows.Next(dest); err == nil {
		t.Error("expected EOF")
	}
	if d.DB("never_opened") != nil {
		t.Error("unknown name should be nil")
	}
}

func TestResultLastInsertIdUnsupported(t *testing.T) {
	db := openDB(t)
	if _, err := db.Exec("CREATE TABLE t (a INT)"); err != nil {
		t.Fatal(err)
	}
	res, err := db.Exec("INSERT INTO t VALUES (1)")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := res.LastInsertId(); err == nil {
		t.Error("LastInsertId should be unsupported")
	}
}

func TestDateRoundTripThroughDriver(t *testing.T) {
	db := openDB(t)
	if _, err := db.Exec("CREATE TABLE d (x DATE)"); err != nil {
		t.Fatal(err)
	}
	in := time.Date(2001, time.October, 31, 15, 4, 5, 0, time.UTC) // time part dropped
	if _, err := db.Exec("INSERT INTO d VALUES (?)", in); err != nil {
		t.Fatal(err)
	}
	var out time.Time
	if err := db.QueryRow("SELECT x FROM d").Scan(&out); err != nil {
		t.Fatal(err)
	}
	if out.Year() != 2001 || out.Month() != time.October || out.Day() != 31 {
		t.Errorf("date: %v", out)
	}
}
