package driver

import (
	"database/sql"
	"testing"
)

// The shim must keep registering the "prefsql" driver for existing
// `import _ "repro/internal/driver"` users.
func TestShimStillRegisters(t *testing.T) {
	db, err := sql.Open("prefsql", ":memory:")
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	db.SetMaxOpenConns(1)
	if _, err := db.Exec("CREATE TABLE t (a INT); INSERT INTO t VALUES (?)", 7); err != nil {
		t.Fatal(err)
	}
	var a int64
	if err := db.QueryRow("SELECT a FROM t WHERE a = ?", 7).Scan(&a); err != nil {
		t.Fatal(err)
	}
	if a != 7 {
		t.Errorf("a: %d", a)
	}
	if Default.DB("never_opened_shim") != nil {
		t.Error("unknown name should be nil")
	}
}
