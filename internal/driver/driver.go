// Package driver provides a database/sql driver for Preference SQL — the
// Go analogue of the paper's "Preference ODBC/JDBC driver" (§3.1): a
// standard driver API placed in front of the Preference SQL optimizer so
// existing applications keep their database/sql code and gain the
// PREFERRING / GROUPING / BUT ONLY clauses for free. Plain SQL passes
// through to the engine without noticeable overhead, preference queries go
// through the preference layer.
//
// Usage:
//
//	import (
//	    "database/sql"
//	    _ "repro/internal/driver"
//	)
//	db, _ := sql.Open("prefsql", "mydb")      // named shared instance
//	db2, _ := sql.Open("prefsql", ":memory:") // private instance
//
// Positional '?' placeholders are supported and substituted as SQL
// literals before parsing.
package driver

import (
	"database/sql"
	"database/sql/driver"
	"fmt"
	"io"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/value"
)

func init() {
	sql.Register("prefsql", &Driver{})
}

// Driver implements driver.Driver. Data source names select a shared
// named in-memory database; the special name ":memory:" yields a fresh
// private database per Open call.
type Driver struct {
	mu  sync.Mutex
	dbs map[string]*core.DB
}

// Open implements driver.Driver.
func (d *Driver) Open(name string) (driver.Conn, error) {
	if name == ":memory:" {
		return &conn{db: core.Open()}, nil
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.dbs == nil {
		d.dbs = map[string]*core.DB{}
	}
	db, ok := d.dbs[name]
	if !ok {
		db = core.Open()
		d.dbs[name] = db
	}
	return &conn{db: db}, nil
}

// DB exposes the named shared instance so tests and embedders can reach
// the underlying preference database (e.g. to switch execution modes).
func (d *Driver) DB(name string) *core.DB {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.dbs[name]
}

type conn struct {
	db *core.DB
}

// Prepare implements driver.Conn.
func (c *conn) Prepare(query string) (driver.Stmt, error) {
	n, err := countPlaceholders(query)
	if err != nil {
		return nil, err
	}
	return &stmt{conn: c, query: query, numInput: n}, nil
}

// Close implements driver.Conn (in-memory: nothing to release).
func (c *conn) Close() error { return nil }

// Begin implements driver.Conn. The engine executes statements atomically
// but has no multi-statement transactions; Begin returns a no-op Tx so
// database/sql code using transactions still runs.
func (c *conn) Begin() (driver.Tx, error) { return noopTx{}, nil }

type noopTx struct{}

func (noopTx) Commit() error   { return nil }
func (noopTx) Rollback() error { return nil }

type stmt struct {
	conn     *conn
	query    string
	numInput int
}

// Close implements driver.Stmt.
func (s *stmt) Close() error { return nil }

// NumInput implements driver.Stmt.
func (s *stmt) NumInput() int { return s.numInput }

// Exec implements driver.Stmt.
func (s *stmt) Exec(args []driver.Value) (driver.Result, error) {
	sqlText, err := bind(s.query, args)
	if err != nil {
		return nil, err
	}
	res, err := s.conn.db.Exec(sqlText)
	if err != nil {
		return nil, err
	}
	return result{affected: int64(res.Affected)}, nil
}

// Query implements driver.Stmt.
func (s *stmt) Query(args []driver.Value) (driver.Rows, error) {
	sqlText, err := bind(s.query, args)
	if err != nil {
		return nil, err
	}
	res, err := s.conn.db.Exec(sqlText)
	if err != nil {
		return nil, err
	}
	return &rows{res: res}, nil
}

type result struct {
	affected int64
}

// LastInsertId implements driver.Result; the engine has no rowids.
func (result) LastInsertId() (int64, error) {
	return 0, fmt.Errorf("prefsql: LastInsertId is not supported")
}

// RowsAffected implements driver.Result.
func (r result) RowsAffected() (int64, error) { return r.affected, nil }

type rows struct {
	res *core.Result
	pos int
}

// Columns implements driver.Rows.
func (r *rows) Columns() []string { return r.res.Columns }

// Close implements driver.Rows.
func (r *rows) Close() error { return nil }

// Next implements driver.Rows.
func (r *rows) Next(dest []driver.Value) error {
	if r.pos >= len(r.res.Rows) {
		return io.EOF
	}
	row := r.res.Rows[r.pos]
	r.pos++
	for i, v := range row {
		dest[i] = toDriverValue(v)
	}
	return nil
}

func toDriverValue(v value.Value) driver.Value {
	switch v.K {
	case value.Null:
		return nil
	case value.Int:
		return v.I
	case value.Float:
		return v.F
	case value.Text:
		return v.S
	case value.Bool:
		return v.I != 0
	case value.Date:
		return v.Time()
	}
	return nil
}

// countPlaceholders counts '?' outside string literals.
func countPlaceholders(query string) (int, error) {
	n := 0
	inString := false
	for i := 0; i < len(query); i++ {
		c := query[i]
		if inString {
			if c == '\'' {
				if i+1 < len(query) && query[i+1] == '\'' {
					i++
					continue
				}
				inString = false
			}
			continue
		}
		switch c {
		case '\'':
			inString = true
		case '?':
			n++
		}
	}
	if inString {
		return 0, fmt.Errorf("prefsql: unterminated string literal in query")
	}
	return n, nil
}

// bind substitutes positional args for '?' placeholders as SQL literals.
func bind(query string, args []driver.Value) (string, error) {
	if len(args) == 0 {
		return query, nil
	}
	var b strings.Builder
	argIdx := 0
	inString := false
	for i := 0; i < len(query); i++ {
		c := query[i]
		if inString {
			b.WriteByte(c)
			if c == '\'' {
				if i+1 < len(query) && query[i+1] == '\'' {
					b.WriteByte(query[i+1])
					i++
					continue
				}
				inString = false
			}
			continue
		}
		switch c {
		case '\'':
			inString = true
			b.WriteByte(c)
		case '?':
			if argIdx >= len(args) {
				return "", fmt.Errorf("prefsql: not enough arguments for placeholders")
			}
			lit, err := literal(args[argIdx])
			if err != nil {
				return "", err
			}
			b.WriteString(lit)
			argIdx++
		default:
			b.WriteByte(c)
		}
	}
	if argIdx != len(args) {
		return "", fmt.Errorf("prefsql: %d arguments for %d placeholders", len(args), argIdx)
	}
	return b.String(), nil
}

func literal(v driver.Value) (string, error) {
	switch x := v.(type) {
	case nil:
		return "NULL", nil
	case int64:
		return value.NewInt(x).SQL(), nil
	case float64:
		return value.NewFloat(x).SQL(), nil
	case bool:
		return value.NewBool(x).SQL(), nil
	case string:
		return value.NewText(x).SQL(), nil
	case []byte:
		return value.NewText(string(x)).SQL(), nil
	case time.Time:
		return value.NewDate(x.Year(), x.Month(), x.Day()).SQL(), nil
	}
	return "", fmt.Errorf("prefsql: unsupported argument type %T", v)
}
