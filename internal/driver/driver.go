// Package driver is the former internal home of the Preference SQL
// database/sql driver. The implementation was promoted to the public
// repro/driver package, which adds real bind parameters (the old literal
// substitution survives there as a documented fallback) and the
// context-aware driver interfaces; this package remains so existing
// `import _ "repro/internal/driver"` lines keep registering the "prefsql"
// driver.
//
// Deprecated: import repro/driver instead.
package driver

import (
	pubdriver "repro/driver"
)

// Driver is the public driver type; see repro/driver.
type Driver = pubdriver.Driver

// Default is the instance registered under the name "prefsql".
var Default = pubdriver.Default
