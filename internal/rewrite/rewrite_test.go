package rewrite_test

import (
	"strings"
	"testing"

	"repro/internal/ast"
	"repro/internal/engine"
	"repro/internal/parser"
	"repro/internal/rewrite"
)

func mustParse(t *testing.T, sql string) *ast.Select {
	t.Helper()
	sel, err := parser.ParseSelect(sql)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return sel
}

// runPlan executes setup, query and teardown against the engine.
func runPlan(t *testing.T, db *engine.DB, plan *rewrite.Plan) *engine.Result {
	t.Helper()
	for _, s := range plan.Setup {
		if _, err := db.ExecStmt(s); err != nil {
			t.Fatalf("setup %s: %v", s.SQL(), err)
		}
	}
	res, err := db.Select(plan.Query)
	if err != nil {
		t.Fatalf("query %s: %v", plan.Query.SQL(), err)
	}
	for _, s := range plan.Teardown {
		if _, err := db.ExecStmt(s); err != nil {
			t.Fatalf("teardown: %v", err)
		}
	}
	return res
}

func carsDB(t *testing.T) *engine.DB {
	t.Helper()
	db := engine.New()
	if _, err := db.Exec(`CREATE TABLE Cars (
		Identifier INTEGER, Make VARCHAR, Model VARCHAR,
		Price INTEGER, Mileage INTEGER, Airbag VARCHAR, Diesel VARCHAR);
	INSERT INTO Cars VALUES
		(1, 'Audi', 'A6', 40000, 15000, 'yes', 'no'),
		(2, 'BMW', '5 series', 35000, 30000, 'yes', 'yes'),
		(3, 'Volkswagen', 'Beetle', 20000, 10000, 'yes', 'no')`); err != nil {
		t.Fatal(err)
	}
	return db
}

var carsCols = []string{"Identifier", "Make", "Model", "Price", "Mileage", "Airbag", "Diesel"}

// The paper's §3.2 example end to end: PREFERRING Make='Audi' AND
// Diesel='yes' rewrites to the Aux view + NOT EXISTS and returns the
// Pareto-optimal cars {1, 2}.
func TestPaperCarsRewrite(t *testing.T) {
	sel := mustParse(t, "SELECT * FROM Cars PREFERRING Make = 'Audi' AND Diesel = 'yes'")
	plan, err := rewrite.Rewrite(sel, carsCols)
	if err != nil {
		t.Fatal(err)
	}
	script := plan.Script()
	for _, want := range []string{"CREATE VIEW", "NOT EXISTS", "CASE WHEN", "DROP VIEW"} {
		if !strings.Contains(script, want) {
			t.Errorf("script lacks %q:\n%s", want, script)
		}
	}
	res := runPlan(t, carsDB(t), plan)
	if len(res.Rows) != 2 {
		t.Fatalf("result size %d: %v", len(res.Rows), res.Rows)
	}
	ids := map[int64]bool{res.Rows[0][0].I: true, res.Rows[1][0].I: true}
	if !ids[1] || !ids[2] {
		t.Errorf("ids: %v", ids)
	}
	// star projection must not leak level columns
	if len(res.Columns) != len(carsCols) {
		t.Errorf("columns leak: %v", res.Columns)
	}
}

func TestRewriteRequiresPreference(t *testing.T) {
	sel := mustParse(t, "SELECT * FROM Cars")
	if _, err := rewrite.Rewrite(sel, carsCols); err == nil {
		t.Fatal("want error")
	}
}

func TestLowestRewrite(t *testing.T) {
	sel := mustParse(t, "SELECT Identifier FROM Cars PREFERRING LOWEST(Price)")
	plan, err := rewrite.Rewrite(sel, carsCols)
	if err != nil {
		t.Fatal(err)
	}
	res := runPlan(t, carsDB(t), plan)
	if len(res.Rows) != 1 || res.Rows[0][0].I != 3 {
		t.Fatalf("lowest price: %v", res.Rows)
	}
}

func TestAroundRewrite(t *testing.T) {
	sel := mustParse(t, "SELECT Identifier FROM Cars PREFERRING Price AROUND 34000")
	plan, err := rewrite.Rewrite(sel, carsCols)
	if err != nil {
		t.Fatal(err)
	}
	res := runPlan(t, carsDB(t), plan)
	if len(res.Rows) != 1 || res.Rows[0][0].I != 2 {
		t.Fatalf("around 34000: %v", res.Rows)
	}
}

func TestCascadeRewriteStages(t *testing.T) {
	// HIGHEST(Price) CASCADE LOWEST(Mileage): Audi wins stage 1 alone.
	sel := mustParse(t, "SELECT Identifier FROM Cars PREFERRING HIGHEST(Price) CASCADE LOWEST(Mileage)")
	plan, err := rewrite.Rewrite(sel, carsCols)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Setup) != 3 { // aux + 2 stages
		t.Errorf("setup statements: %d", len(plan.Setup))
	}
	res := runPlan(t, carsDB(t), plan)
	if len(res.Rows) != 1 || res.Rows[0][0].I != 1 {
		t.Fatalf("cascade: %v", res.Rows)
	}
}

func TestCascadeTieBrokenBySecondStage(t *testing.T) {
	db := carsDB(t)
	if _, err := db.Exec("INSERT INTO Cars VALUES (4, 'Opel', 'GT', 40000, 5000, 'yes', 'no')"); err != nil {
		t.Fatal(err)
	}
	sel := mustParse(t, "SELECT Identifier FROM Cars PREFERRING HIGHEST(Price) CASCADE LOWEST(Mileage)")
	plan, err := rewrite.Rewrite(sel, carsCols)
	if err != nil {
		t.Fatal(err)
	}
	res := runPlan(t, db, plan)
	if len(res.Rows) != 1 || res.Rows[0][0].I != 4 {
		t.Fatalf("tie break: %v", res.Rows)
	}
}

func TestButOnlyRewrite(t *testing.T) {
	sel := mustParse(t, `SELECT Identifier FROM Cars
		PREFERRING Price AROUND 30000 BUT ONLY DISTANCE(Price) <= 1000`)
	plan, err := rewrite.Rewrite(sel, carsCols)
	if err != nil {
		t.Fatal(err)
	}
	res := runPlan(t, carsDB(t), plan)
	// best is BMW at distance 5000 > 1000: result must be empty
	if len(res.Rows) != 0 {
		t.Fatalf("but only should empty the result: %v", res.Rows)
	}
}

func TestQualityFunctionsInSelect(t *testing.T) {
	sel := mustParse(t, `SELECT Identifier, LEVEL(Make), DISTANCE(Price), TOP(Make) FROM Cars
		PREFERRING Make = 'Audi' AND Price AROUND 40000`)
	plan, err := rewrite.Rewrite(sel, carsCols)
	if err != nil {
		t.Fatal(err)
	}
	res := runPlan(t, carsDB(t), plan)
	if len(res.Rows) != 1 {
		t.Fatalf("rows: %v", res.Rows)
	}
	row := res.Rows[0]
	if row[0].I != 1 || row[1].I != 1 || row[2].Num() != 0 || !row[3].IsTrue() {
		t.Errorf("quality row: %v", row)
	}
}

func TestRelativeDistanceForLowest(t *testing.T) {
	sel := mustParse(t, `SELECT Identifier, DISTANCE(Price) FROM Cars PREFERRING LOWEST(Price)`)
	plan, err := rewrite.Rewrite(sel, carsCols)
	if err != nil {
		t.Fatal(err)
	}
	res := runPlan(t, carsDB(t), plan)
	if len(res.Rows) != 1 || res.Rows[0][1].Num() != 0 {
		t.Fatalf("relative distance at optimum should be 0: %v", res.Rows)
	}
}

func TestGroupingRewrite(t *testing.T) {
	sel := mustParse(t, `SELECT Identifier FROM Cars PREFERRING LOWEST(Price) GROUPING Diesel`)
	plan, err := rewrite.Rewrite(sel, carsCols)
	if err != nil {
		t.Fatal(err)
	}
	res := runPlan(t, carsDB(t), plan)
	// groups: Diesel=no -> VW(3) cheapest; Diesel=yes -> BMW(2)
	if len(res.Rows) != 2 {
		t.Fatalf("grouped: %v", res.Rows)
	}
}

func TestLayeredElseRewrite(t *testing.T) {
	db := engine.New()
	if _, err := db.Exec(`CREATE TABLE car2 (id INT, category VARCHAR);
		INSERT INTO car2 VALUES (1, 'passenger'), (2, 'suv'), (3, 'truck')`); err != nil {
		t.Fatal(err)
	}
	sel := mustParse(t, `SELECT id FROM car2
		PREFERRING category = 'roadster' ELSE category <> 'passenger'`)
	plan, err := rewrite.Rewrite(sel, []string{"id", "category"})
	if err != nil {
		t.Fatal(err)
	}
	res := runPlan(t, db, plan)
	// no roadster: suv and truck (level 1) beat passenger (level 2)
	if len(res.Rows) != 2 {
		t.Fatalf("layered: %v", res.Rows)
	}
}

func TestExplicitRewrite(t *testing.T) {
	db := engine.New()
	if _, err := db.Exec(`CREATE TABLE t (id INT, color VARCHAR);
		INSERT INTO t VALUES (1, 'red'), (2, 'blue'), (3, 'green'), (4, 'purple')`); err != nil {
		t.Fatal(err)
	}
	sel := mustParse(t, `SELECT id, LEVEL(color) FROM t
		PREFERRING EXPLICIT(color, 'red' > 'blue', 'blue' > 'green')`)
	plan, err := rewrite.Rewrite(sel, []string{"id", "color"})
	if err != nil {
		t.Fatal(err)
	}
	res := runPlan(t, db, plan)
	if len(res.Rows) != 1 || res.Rows[0][0].I != 1 || res.Rows[0][1].I != 1 {
		t.Fatalf("explicit: %v", res.Rows)
	}
}

func TestExplicitIncomparableChainsBothSurvive(t *testing.T) {
	db := engine.New()
	if _, err := db.Exec(`CREATE TABLE t (id INT, color VARCHAR);
		INSERT INTO t VALUES (1, 'red'), (2, 'yellow'), (3, 'green')`); err != nil {
		t.Fatal(err)
	}
	// red > green, yellow > green: red and yellow are incomparable maxima.
	sel := mustParse(t, `SELECT id FROM t
		PREFERRING EXPLICIT(color, 'red' > 'green', 'yellow' > 'green')`)
	plan, err := rewrite.Rewrite(sel, []string{"id", "color"})
	if err != nil {
		t.Fatal(err)
	}
	res := runPlan(t, db, plan)
	if len(res.Rows) != 2 {
		t.Fatalf("incomparable maxima: %v", res.Rows)
	}
}

func TestContainsRewrite(t *testing.T) {
	db := engine.New()
	if _, err := db.Exec(`CREATE TABLE docs (id INT, body VARCHAR);
		INSERT INTO docs VALUES
		(1, 'Preference SQL extends database systems'),
		(2, 'a database paper'),
		(3, 'cooking recipes')`); err != nil {
		t.Fatal(err)
	}
	sel := mustParse(t, `SELECT id FROM docs PREFERRING body CONTAINS ('database', 'preference')`)
	plan, err := rewrite.Rewrite(sel, []string{"id", "body"})
	if err != nil {
		t.Fatal(err)
	}
	res := runPlan(t, db, plan)
	if len(res.Rows) != 1 || res.Rows[0][0].I != 1 {
		t.Fatalf("contains: %v", res.Rows)
	}
}

func TestNestedCascadeInsideParetoRejected(t *testing.T) {
	sel := mustParse(t, `SELECT * FROM Cars PREFERRING (LOWEST(Price) CASCADE LOWEST(Mileage)) AND HIGHEST(Price)`)
	if _, err := rewrite.Rewrite(sel, carsCols); err == nil {
		t.Fatal("nested cascade should be rejected by the rewriter")
	}
}

func TestDateAroundRewrite(t *testing.T) {
	db := engine.New()
	if _, err := db.Exec(`CREATE TABLE trips (id INT, start_day DATE);
		INSERT INTO trips VALUES (1, '1999-07-01'), (2, '1999-07-04'), (3, '1999-08-01')`); err != nil {
		t.Fatal(err)
	}
	sel := mustParse(t, `SELECT id FROM trips PREFERRING start_day AROUND '1999/7/3'`)
	plan, err := rewrite.Rewrite(sel, []string{"id", "start_day"})
	if err != nil {
		t.Fatal(err)
	}
	res := runPlan(t, db, plan)
	if len(res.Rows) != 1 || res.Rows[0][0].I != 2 {
		t.Fatalf("date around: %v", res.Rows)
	}
}

func TestNullsLoseToValues(t *testing.T) {
	db := engine.New()
	if _, err := db.Exec(`CREATE TABLE t (id INT, x INT);
		INSERT INTO t VALUES (1, 5), (2, NULL)`); err != nil {
		t.Fatal(err)
	}
	sel := mustParse(t, `SELECT id FROM t PREFERRING x AROUND 5`)
	plan, err := rewrite.Rewrite(sel, []string{"id", "x"})
	if err != nil {
		t.Fatal(err)
	}
	res := runPlan(t, db, plan)
	if len(res.Rows) != 1 || res.Rows[0][0].I != 1 {
		t.Fatalf("null should lose: %v", res.Rows)
	}
}

func TestOrderByAfterPreference(t *testing.T) {
	db := carsDB(t)
	if _, err := db.Exec("INSERT INTO Cars VALUES (4, 'Seat', 'Ibiza', 20000, 99000, 'no', 'no')"); err != nil {
		t.Fatal(err)
	}
	sel := mustParse(t, "SELECT Identifier FROM Cars PREFERRING LOWEST(Price) ORDER BY Identifier DESC")
	plan, err := rewrite.Rewrite(sel, carsCols)
	if err != nil {
		t.Fatal(err)
	}
	res := runPlan(t, db, plan)
	if len(res.Rows) != 2 || res.Rows[0][0].I != 4 || res.Rows[1][0].I != 3 {
		t.Fatalf("ordered BMO: %v", res.Rows)
	}
}

func TestUniqueViewNamesAcrossRewrites(t *testing.T) {
	sel := mustParse(t, "SELECT * FROM Cars PREFERRING LOWEST(Price)")
	p1, err := rewrite.Rewrite(sel, carsCols)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := rewrite.Rewrite(sel, carsCols)
	if err != nil {
		t.Fatal(err)
	}
	n1 := p1.Setup[0].(*ast.CreateView).Name
	n2 := p2.Setup[0].(*ast.CreateView).Name
	if n1 == n2 {
		t.Fatalf("view names collide: %s", n1)
	}
}

// Every emitted script must itself parse: the rewriter's output is valid
// SQL of our own dialect (and plain SQL92 by construction).
func TestEmittedScriptsParse(t *testing.T) {
	queries := []string{
		"SELECT * FROM Cars PREFERRING Make = 'Audi' AND Diesel = 'yes'",
		"SELECT Identifier FROM Cars PREFERRING LOWEST(Price) CASCADE HIGHEST(Mileage)",
		"SELECT Identifier, LEVEL(Make) FROM Cars PREFERRING Make = 'Audi' ELSE Make = 'BMW'",
		"SELECT Identifier FROM Cars PREFERRING Price BETWEEN 20000, 30000 AND Mileage AROUND 15000",
		"SELECT Identifier FROM Cars PREFERRING EXPLICIT(Make, 'Audi' > 'BMW') GROUPING Diesel",
		"SELECT Identifier, DISTANCE(Price) FROM Cars PREFERRING LOWEST(Price) BUT ONLY DISTANCE(Price) <= 5000",
		"SELECT Identifier FROM Cars PREFERRING Model CONTAINS ('series')",
	}
	for _, q := range queries {
		sel := mustParse(t, q)
		plan, err := rewrite.Rewrite(sel, carsCols)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		if _, err := parser.ParseAll(plan.Script()); err != nil {
			t.Errorf("emitted script does not parse for %q:\n%s\nerror: %v", q, plan.Script(), err)
		}
	}
}

// The rewritten scripts for these queries must also RUN and agree with
// each other across repeated plan generations (fresh view names).
func TestPlansAreReusableAndIsolated(t *testing.T) {
	db := carsDB(t)
	sel := mustParse(t, "SELECT Identifier FROM Cars PREFERRING LOWEST(Price)")
	for i := 0; i < 3; i++ {
		plan, err := rewrite.Rewrite(sel, carsCols)
		if err != nil {
			t.Fatal(err)
		}
		res := runPlan(t, db, plan)
		if len(res.Rows) != 1 || res.Rows[0][0].I != 3 {
			t.Fatalf("iteration %d: %v", i, res.Rows)
		}
	}
	// no views left behind
	if n := len(db.Catalog().ViewNames()); n != 0 {
		t.Errorf("%d views leaked", n)
	}
}

func TestButOnlyWithLevelOnLayered(t *testing.T) {
	db := engine.New()
	if _, err := db.Exec(`CREATE TABLE t (id INT, color VARCHAR);
		INSERT INTO t VALUES (1, 'red'), (2, 'yellow')`); err != nil {
		t.Fatal(err)
	}
	// no white exists: best is yellow at level 2; BUT ONLY LEVEL <= 1 empties
	sel := mustParse(t, `SELECT id FROM t
		PREFERRING color = 'white' ELSE color = 'yellow'
		BUT ONLY LEVEL(color) <= 1`)
	plan, err := rewrite.Rewrite(sel, []string{"id", "color"})
	if err != nil {
		t.Fatal(err)
	}
	res := runPlan(t, db, plan)
	if len(res.Rows) != 0 {
		t.Fatalf("level threshold: %v", res.Rows)
	}
}

func TestRewriteTopFunction(t *testing.T) {
	sel := mustParse(t, `SELECT Identifier, TOP(Price) FROM Cars PREFERRING Price AROUND 20000`)
	plan, err := rewrite.Rewrite(sel, carsCols)
	if err != nil {
		t.Fatal(err)
	}
	res := runPlan(t, carsDB(t), plan)
	if len(res.Rows) != 1 || !res.Rows[0][1].IsTrue() {
		t.Fatalf("top: %v", res.Rows)
	}
}
