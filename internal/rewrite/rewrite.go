// Package rewrite implements the Preference SQL Optimizer of §3.2: it
// translates a PREFERRING query into standard SQL92 — an auxiliary view
// annotating each tuple with quality levels (CASE WHEN ... / ABS(...)
// expressions) plus a correlated NOT EXISTS dominance test, exactly the
// pattern shown for the Cars example in the paper.
//
// Cascades rewrite into a chain of views, one BMO stage per cascade part
// ("applying preferences one after the other"). The result is a Plan:
// CREATE VIEW setup statements, one final SELECT, and DROP VIEW teardown.
// Everything emitted is plain SQL92 entry level and runs unchanged on the
// repro engine (or, in the paper's world, on any host database).
package rewrite

import (
	"fmt"
	"strings"
	"sync/atomic"

	"repro/internal/ast"
	"repro/internal/value"
)

// Plan is the rewritten form of one preference query.
type Plan struct {
	Setup    []ast.Stmt  // CREATE VIEW statements, in order
	Query    *ast.Select // final plain-SQL SELECT
	Teardown []ast.Stmt  // DROP VIEW statements, reverse order
}

// Script renders the full plan as a ';'-separated SQL script (for display,
// logging, and shipping to an external SQL92 database).
func (p *Plan) Script() string {
	var b strings.Builder
	for _, s := range p.Setup {
		b.WriteString(s.SQL())
		b.WriteString(";\n")
	}
	b.WriteString(p.Query.SQL())
	b.WriteString(";\n")
	for _, s := range p.Teardown {
		b.WriteString(s.SQL())
		b.WriteString(";\n")
	}
	return b.String()
}

// viewSeq numbers generated views so concurrent rewrites never collide.
var viewSeq atomic.Uint64

// Rewrite translates a preference query into a Plan. baseColumns must list
// the output column names of the query's FROM/WHERE part (the caller knows
// the catalog; the rewriter is schema-agnostic otherwise).
func Rewrite(sel *ast.Select, baseColumns []string) (*Plan, error) {
	if !sel.HasPreference() {
		return nil, fmt.Errorf("rewrite: query has no PREFERRING clause")
	}
	r := &rewriter{baseCols: baseColumns, seq: viewSeq.Add(1)}
	return r.rewrite(sel)
}

// basePref describes one base preference occurrence with its level column.
type basePref struct {
	ordinal  int    // 1-based, names the _lvl_/_exv_ column
	label    string // attribute label (X.SQL()) for quality functions
	discrete bool
	relative bool // LOWEST/HIGHEST: optimum depends on candidate set
	explicit *explicitInfo
}

func (bp *basePref) lvlCol() string { return fmt.Sprintf("_lvl_%d", bp.ordinal) }
func (bp *basePref) exvCol() string { return fmt.Sprintf("_exv_%d", bp.ordinal) }

// explicitInfo carries the better-than closure of an EXPLICIT preference.
type explicitInfo struct {
	mentioned []value.Value
	pairs     [][2]value.Value // transitive closure: better, worse
	depth     map[string]int
	maxDepth  int
}

type rewriter struct {
	baseCols []string
	seq      uint64
	prefs    []*basePref          // all base preferences, in discovery order
	byLabel  map[string]*basePref // first registration per attribute label
	auxView  string               // name of the level-annotated base view
}

func (r *rewriter) viewName(kind string, i int) string {
	return fmt.Sprintf("_pref_%s_%d_%d", kind, r.seq, i)
}

func (r *rewriter) rewrite(sel *ast.Select) (*Plan, error) {
	// 1. Normalize the preference tree into cascade stages of Pareto parts.
	stages, err := normalize(sel.Preferring)
	if err != nil {
		return nil, err
	}

	// 2. Collect base preferences and their level expressions.
	r.byLabel = map[string]*basePref{}
	type stagePlan struct {
		parts []*basePref
	}
	var stagePlans []stagePlan
	var levelItems []ast.SelectItem
	for _, stage := range stages {
		sp := stagePlan{}
		for _, part := range stage {
			bp, items, err := r.compileBase(part)
			if err != nil {
				return nil, err
			}
			sp.parts = append(sp.parts, bp)
			levelItems = append(levelItems, items...)
		}
		stagePlans = append(stagePlans, sp)
	}

	// 3. Aux view: base columns + level columns over original FROM/WHERE.
	r.auxView = r.viewName("aux", 0)
	auxItems := make([]ast.SelectItem, 0, len(r.baseCols)+len(levelItems))
	for _, c := range r.baseCols {
		auxItems = append(auxItems, ast.SelectItem{Expr: &ast.Column{Name: c}})
	}
	auxItems = append(auxItems, levelItems...)
	auxSel := &ast.Select{
		Items: auxItems,
		From:  sel.From,
		Where: sel.Where,
		Limit: -1,
	}
	setup := []ast.Stmt{&ast.CreateView{Name: r.auxView, Sel: auxSel}}

	// 4. One BMO stage view per cascade part.
	current := r.auxView
	for i, sp := range stagePlans {
		dom, err := r.dominance(sp.parts, "A2", "A1", sel.Grouping)
		if err != nil {
			return nil, err
		}
		stageName := r.viewName("stage", i+1)
		stageSel := &ast.Select{
			Items: []ast.SelectItem{{Expr: &ast.Star{}}},
			From:  []ast.TableRef{&ast.BaseTable{Name: current, Alias: "A1"}},
			Where: &ast.Exists{
				Not: true,
				Sub: &ast.Select{
					Items: []ast.SelectItem{{Expr: &ast.Literal{Val: value.NewInt(1)}}},
					From:  []ast.TableRef{&ast.BaseTable{Name: current, Alias: "A2"}},
					Where: dom,
					Limit: -1,
				},
			},
			Limit: -1,
		}
		setup = append(setup, &ast.CreateView{Name: stageName, Sel: stageSel})
		current = stageName
	}

	// 5. Final projection: original select items (star expands to the base
	// columns so level columns stay internal), BUT ONLY as WHERE, original
	// ORDER BY / LIMIT / DISTINCT.
	items, err := r.finalItems(sel.Items)
	if err != nil {
		return nil, err
	}
	final := &ast.Select{
		Distinct: sel.Distinct,
		Items:    items,
		From:     []ast.TableRef{&ast.BaseTable{Name: current}},
		OrderBy:  nil,
		Limit:    sel.Limit,
		Offset:   sel.Offset,
	}
	if sel.ButOnly != nil {
		cond, err := r.rewriteQualityFuncs(sel.ButOnly)
		if err != nil {
			return nil, err
		}
		final.Where = cond
	}
	for _, ob := range sel.OrderBy {
		e, err := r.rewriteQualityFuncs(ob.Expr)
		if err != nil {
			return nil, err
		}
		final.OrderBy = append(final.OrderBy, ast.OrderItem{Expr: e, Desc: ob.Desc})
	}

	// 6. Teardown in reverse order.
	var teardown []ast.Stmt
	for i := len(setup) - 1; i >= 0; i-- {
		cv := setup[i].(*ast.CreateView)
		teardown = append(teardown, &ast.Drop{Kind: "VIEW", Name: cv.Name})
	}
	return &Plan{Setup: setup, Query: final, Teardown: teardown}, nil
}

// normalize flattens the preference tree into cascade stages, each a list
// of Pareto-accumulated base preference terms. Cascades nested inside
// Pareto accumulation are not expressible in the staged rewriting and
// fall back to native evaluation (the caller handles the error).
func normalize(p ast.Pref) ([][]ast.Pref, error) {
	var stages [][]ast.Pref
	cascadeParts := []ast.Pref{p}
	if c, ok := p.(*ast.PrefCascade); ok {
		cascadeParts = c.Parts
	}
	for _, part := range cascadeParts {
		var paretoParts []ast.Pref
		switch x := part.(type) {
		case *ast.PrefCascade:
			return nil, fmt.Errorf("rewrite: nested CASCADE inside a cascade stage")
		case *ast.PrefPareto:
			for _, q := range x.Parts {
				switch q.(type) {
				case *ast.PrefCascade:
					return nil, fmt.Errorf("rewrite: CASCADE nested inside Pareto accumulation is not SQL-rewritable")
				case *ast.PrefPareto:
					// flatten nested pareto
					paretoParts = append(paretoParts, q.(*ast.PrefPareto).Parts...)
				default:
					paretoParts = append(paretoParts, q)
				}
			}
		default:
			paretoParts = []ast.Pref{part}
		}
		stages = append(stages, paretoParts)
	}
	return stages, nil
}

// compileBase assigns the base preference its ordinal and produces the
// select items (level or explicit-value columns) for the aux view.
func (r *rewriter) compileBase(p ast.Pref) (*basePref, []ast.SelectItem, error) {
	bp := &basePref{ordinal: len(r.prefs) + 1}
	var items []ast.SelectItem
	worst := &ast.Literal{Val: value.NewFloat(9e99)}

	nullGuard := func(x ast.Expr, e ast.Expr) ast.Expr {
		return &ast.Case{
			Whens: []ast.WhenClause{{When: &ast.IsNull{X: x}, Then: worst}},
			Else:  e,
		}
	}

	switch x := p.(type) {
	case *ast.PrefAround:
		bp.label = x.X.SQL()
		target := asNumericLiteral(x.Target)
		diff := &ast.FuncCall{Name: "ABS", Args: []ast.Expr{&ast.Binary{Op: "-", L: x.X, R: target}}}
		items = append(items, ast.SelectItem{Expr: nullGuard(x.X, diff), Alias: bp.lvlCol()})

	case *ast.PrefBetween:
		bp.label = x.X.SQL()
		lo, hi := asNumericLiteral(x.Lo), asNumericLiteral(x.Hi)
		e := &ast.Case{
			Whens: []ast.WhenClause{
				{When: &ast.IsNull{X: x.X}, Then: worst},
				{When: &ast.Binary{Op: "<", L: x.X, R: lo}, Then: &ast.Binary{Op: "-", L: lo, R: x.X}},
				{When: &ast.Binary{Op: ">", L: x.X, R: hi}, Then: &ast.Binary{Op: "-", L: x.X, R: hi}},
			},
			Else: &ast.Literal{Val: value.NewInt(0)},
		}
		items = append(items, ast.SelectItem{Expr: e, Alias: bp.lvlCol()})

	case *ast.PrefLowest:
		bp.label = x.X.SQL()
		bp.relative = true
		items = append(items, ast.SelectItem{Expr: nullGuard(x.X, x.X), Alias: bp.lvlCol()})

	case *ast.PrefHighest:
		bp.label = x.X.SQL()
		bp.relative = true
		neg := &ast.Binary{Op: "-", L: &ast.Literal{Val: value.NewInt(0)}, R: x.X}
		items = append(items, ast.SelectItem{Expr: nullGuard(x.X, neg), Alias: bp.lvlCol()})

	case *ast.PrefPos:
		bp.label = x.X.SQL()
		bp.discrete = true
		e := &ast.Case{
			Whens: []ast.WhenClause{
				{When: &ast.IsNull{X: x.X}, Then: worst},
				{When: &ast.InList{X: x.X, List: x.Values}, Then: &ast.Literal{Val: value.NewInt(0)}},
			},
			Else: &ast.Literal{Val: value.NewInt(1)},
		}
		items = append(items, ast.SelectItem{Expr: e, Alias: bp.lvlCol()})

	case *ast.PrefNeg:
		bp.label = x.X.SQL()
		bp.discrete = true
		e := &ast.Case{
			Whens: []ast.WhenClause{
				{When: &ast.IsNull{X: x.X}, Then: worst},
				{When: &ast.InList{X: x.X, List: x.Values}, Then: &ast.Literal{Val: value.NewInt(1)}},
			},
			Else: &ast.Literal{Val: value.NewInt(0)},
		}
		items = append(items, ast.SelectItem{Expr: e, Alias: bp.lvlCol()})

	case *ast.PrefContains:
		bp.label = x.X.SQL()
		bp.discrete = true
		var sum ast.Expr
		for _, term := range x.Terms {
			lit, ok := term.(*ast.Literal)
			if !ok {
				return nil, nil, fmt.Errorf("rewrite: CONTAINS terms must be literals")
			}
			pat := &ast.Literal{Val: value.NewText("%" + strings.ToLower(lit.Val.String()) + "%")}
			miss := &ast.Case{
				Whens: []ast.WhenClause{{
					When: &ast.Like{X: &ast.FuncCall{Name: "LOWER", Args: []ast.Expr{x.X}}, Pattern: pat},
					Then: &ast.Literal{Val: value.NewInt(0)},
				}},
				Else: &ast.Literal{Val: value.NewInt(1)},
			}
			if sum == nil {
				sum = miss
			} else {
				sum = &ast.Binary{Op: "+", L: sum, R: miss}
			}
		}
		items = append(items, ast.SelectItem{Expr: nullGuard(x.X, sum), Alias: bp.lvlCol()})

	case *ast.PrefBool:
		bp.label = x.Cond.SQL()
		bp.discrete = true
		e := &ast.Case{
			Whens: []ast.WhenClause{{When: x.Cond, Then: &ast.Literal{Val: value.NewInt(0)}}},
			Else:  &ast.Literal{Val: value.NewInt(1)},
		}
		items = append(items, ast.SelectItem{Expr: e, Alias: bp.lvlCol()})

	case *ast.PrefElse:
		layers, err := flattenElse(x)
		if err != nil {
			return nil, nil, err
		}
		bp.discrete = true
		var whens []ast.WhenClause
		for i, layer := range layers {
			perfect, label, err := perfectCond(layer)
			if err != nil {
				return nil, nil, err
			}
			if bp.label == "" {
				bp.label = label
			}
			whens = append(whens, ast.WhenClause{When: perfect, Then: &ast.Literal{Val: value.NewInt(int64(i))}})
		}
		e := &ast.Case{Whens: whens, Else: &ast.Literal{Val: value.NewInt(int64(len(layers)))}}
		items = append(items, ast.SelectItem{Expr: e, Alias: bp.lvlCol()})

	case *ast.PrefExplicit:
		bp.label = x.X.SQL()
		info, err := buildExplicitInfo(x)
		if err != nil {
			return nil, nil, err
		}
		bp.explicit = info
		items = append(items, ast.SelectItem{Expr: x.X, Alias: bp.exvCol()})

	default:
		return nil, nil, fmt.Errorf("rewrite: unsupported preference term %T", p)
	}

	r.prefs = append(r.prefs, bp)
	key := strings.ToLower(bp.label)
	if _, ok := r.byLabel[key]; !ok {
		r.byLabel[key] = bp
	}
	return bp, items, nil
}

// asNumericLiteral converts text literals that parse as dates (the paper
// writes AROUND '1999/7/3') into DATE literals so arithmetic works.
func asNumericLiteral(e ast.Expr) ast.Expr {
	lit, ok := e.(*ast.Literal)
	if !ok || lit.Val.K != value.Text {
		return e
	}
	if d, err := value.ParseDate(lit.Val.S); err == nil {
		return &ast.Literal{Val: d}
	}
	return e
}

func flattenElse(e *ast.PrefElse) ([]ast.Pref, error) {
	var out []ast.Pref
	var walk func(p ast.Pref) error
	walk = func(p ast.Pref) error {
		if el, ok := p.(*ast.PrefElse); ok {
			if err := walk(el.First); err != nil {
				return err
			}
			return walk(el.Second)
		}
		out = append(out, p)
		return nil
	}
	if err := walk(e); err != nil {
		return nil, err
	}
	return out, nil
}

// perfectCond builds the SQL condition "this layer is a perfect match".
func perfectCond(p ast.Pref) (ast.Expr, string, error) {
	switch x := p.(type) {
	case *ast.PrefPos:
		return &ast.InList{X: x.X, List: x.Values}, x.X.SQL(), nil
	case *ast.PrefNeg:
		return &ast.Binary{Op: "AND",
			L: &ast.IsNull{X: x.X, Not: true},
			R: &ast.InList{X: x.X, List: x.Values, Not: true}}, x.X.SQL(), nil
	case *ast.PrefAround:
		return &ast.Binary{Op: "=", L: x.X, R: asNumericLiteral(x.Target)}, x.X.SQL(), nil
	case *ast.PrefBetween:
		return &ast.Between{X: x.X, Lo: asNumericLiteral(x.Lo), Hi: asNumericLiteral(x.Hi)}, x.X.SQL(), nil
	case *ast.PrefBool:
		return x.Cond, x.Cond.SQL(), nil
	}
	return nil, "", fmt.Errorf("rewrite: %T cannot appear as an ELSE layer", p)
}

func buildExplicitInfo(x *ast.PrefExplicit) (*explicitInfo, error) {
	adj := map[string][]string{}
	vals := map[string]value.Value{}
	keyOf := func(e ast.Expr) (string, error) {
		lit, ok := e.(*ast.Literal)
		if !ok {
			return "", fmt.Errorf("rewrite: EXPLICIT values must be literals")
		}
		k := lit.Val.Key()
		vals[k] = lit.Val
		return k, nil
	}
	for _, e := range x.Edges {
		b, err := keyOf(e.Better)
		if err != nil {
			return nil, err
		}
		w, err := keyOf(e.Worse)
		if err != nil {
			return nil, err
		}
		adj[b] = append(adj[b], w)
	}
	info := &explicitInfo{depth: map[string]int{}}
	for k := range vals {
		info.mentioned = append(info.mentioned, vals[k])
	}
	// closure with cycle check
	for n := range vals {
		reach := map[string]bool{}
		stack := append([]string{}, adj[n]...)
		for len(stack) > 0 {
			top := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if reach[top] {
				continue
			}
			reach[top] = true
			stack = append(stack, adj[top]...)
		}
		if reach[n] {
			return nil, fmt.Errorf("rewrite: EXPLICIT preference has a cycle")
		}
		for w := range reach {
			info.pairs = append(info.pairs, [2]value.Value{vals[n], vals[w]})
		}
	}
	for changed := true; changed; {
		changed = false
		for b, ws := range adj {
			for _, w := range ws {
				if d := info.depth[b] + 1; d > info.depth[w] {
					info.depth[w] = d
					if d > info.maxDepth {
						info.maxDepth = d
					}
					changed = true
				}
			}
		}
	}
	return info, nil
}

// ---------------------------------------------------------------------------
// Dominance condition
// ---------------------------------------------------------------------------

// dominance builds the SQL predicate "row a2 dominates row a1" for one
// Pareto stage: equal-or-better in every part AND strictly better in one,
// restricted to the same GROUPING partition.
func (r *rewriter) dominance(parts []*basePref, a2, a1 string, grouping []*ast.Column) (ast.Expr, error) {
	var eqbs, sbs []ast.Expr
	for _, bp := range parts {
		eqb, sb := r.partPredicates(bp, a2, a1)
		eqbs = append(eqbs, eqb)
		sbs = append(sbs, sb)
	}
	cond := andAll(eqbs)
	cond = &ast.Binary{Op: "AND", L: cond, R: orAll(sbs)}
	for _, g := range grouping {
		c2 := &ast.Column{Table: a2, Name: g.Name}
		c1 := &ast.Column{Table: a1, Name: g.Name}
		same := &ast.Binary{Op: "OR",
			L: &ast.Binary{Op: "=", L: c2, R: c1},
			R: &ast.Binary{Op: "AND", L: &ast.IsNull{X: c2}, R: &ast.IsNull{X: c1}},
		}
		cond = &ast.Binary{Op: "AND", L: same, R: cond}
	}
	return cond, nil
}

// partPredicates returns (equal-or-better, strictly-better) predicates
// comparing alias a2 against alias a1 for one base preference.
func (r *rewriter) partPredicates(bp *basePref, a2, a1 string) (eqb, sb ast.Expr) {
	if bp.explicit == nil {
		c2 := &ast.Column{Table: a2, Name: bp.lvlCol()}
		c1 := &ast.Column{Table: a1, Name: bp.lvlCol()}
		return &ast.Binary{Op: "<=", L: c2, R: c1}, &ast.Binary{Op: "<", L: c2, R: c1}
	}
	info := bp.explicit
	c2 := &ast.Column{Table: a2, Name: bp.exvCol()}
	c1 := &ast.Column{Table: a1, Name: bp.exvCol()}
	mentionedList := func(c ast.Expr) *ast.InList {
		list := make([]ast.Expr, len(info.mentioned))
		for i, v := range info.mentioned {
			list[i] = &ast.Literal{Val: v}
		}
		return &ast.InList{X: c, List: list}
	}
	unmentioned := func(c *ast.Column) ast.Expr {
		in := mentionedList(c)
		notIn := &ast.InList{X: c, List: in.List, Not: true}
		return &ast.Binary{Op: "OR", L: &ast.IsNull{X: c}, R: notIn}
	}
	// strictly better: closure pair match, or mentioned beats unmentioned
	var pairConds []ast.Expr
	for _, pr := range info.pairs {
		pairConds = append(pairConds, &ast.Binary{Op: "AND",
			L: &ast.Binary{Op: "=", L: c2, R: &ast.Literal{Val: pr[0]}},
			R: &ast.Binary{Op: "=", L: c1, R: &ast.Literal{Val: pr[1]}},
		})
	}
	mentionedVsUn := &ast.Binary{Op: "AND", L: mentionedList(c2), R: unmentioned(c1)}
	pairConds = append(pairConds, mentionedVsUn)
	sb = orAll(pairConds)
	// equal: same value, or both unmentioned
	eq := &ast.Binary{Op: "OR",
		L: &ast.Binary{Op: "=", L: c2, R: c1},
		R: &ast.Binary{Op: "AND", L: unmentioned(c2), R: unmentioned(c1)},
	}
	eqb = &ast.Binary{Op: "OR", L: eq, R: sb}
	return eqb, sb
}

func andAll(xs []ast.Expr) ast.Expr {
	out := xs[0]
	for _, x := range xs[1:] {
		out = &ast.Binary{Op: "AND", L: out, R: x}
	}
	return out
}

func orAll(xs []ast.Expr) ast.Expr {
	out := xs[0]
	for _, x := range xs[1:] {
		out = &ast.Binary{Op: "OR", L: out, R: x}
	}
	return out
}

// ---------------------------------------------------------------------------
// Quality functions and final projection
// ---------------------------------------------------------------------------

// finalItems maps the original SELECT list onto the last stage view:
// stars expand to the base columns (hiding the internal level columns) and
// quality functions become level-column expressions.
func (r *rewriter) finalItems(items []ast.SelectItem) ([]ast.SelectItem, error) {
	var out []ast.SelectItem
	for _, it := range items {
		if _, ok := it.Expr.(*ast.Star); ok {
			for _, c := range r.baseCols {
				out = append(out, ast.SelectItem{Expr: &ast.Column{Name: c}})
			}
			continue
		}
		e, err := r.rewriteQualityFuncs(it.Expr)
		if err != nil {
			return nil, err
		}
		alias := it.Alias
		if alias == "" {
			if _, isCol := it.Expr.(*ast.Column); !isCol {
				// keep the user-visible name of quality functions stable
				alias = it.Expr.SQL()
			}
		}
		out = append(out, ast.SelectItem{Expr: e, Alias: alias})
	}
	return out, nil
}

// rewriteQualityFuncs replaces TOP/LEVEL/DISTANCE(attr) with expressions
// over the generated level columns.
func (r *rewriter) rewriteQualityFuncs(e ast.Expr) (ast.Expr, error) {
	switch x := e.(type) {
	case *ast.FuncCall:
		name := strings.ToUpper(x.Name)
		if name == "TOP" || name == "LEVEL" || name == "DISTANCE" {
			if len(x.Args) != 1 {
				return nil, fmt.Errorf("rewrite: %s expects one attribute argument", name)
			}
			bp, ok := r.byLabel[strings.ToLower(x.Args[0].SQL())]
			if !ok {
				return nil, fmt.Errorf("rewrite: %s(%s): no preference on that attribute", name, x.Args[0].SQL())
			}
			return r.qualityExpr(name, bp)
		}
		args := make([]ast.Expr, len(x.Args))
		for i, a := range x.Args {
			na, err := r.rewriteQualityFuncs(a)
			if err != nil {
				return nil, err
			}
			args[i] = na
		}
		return &ast.FuncCall{Name: x.Name, Args: args, Distinct: x.Distinct}, nil
	case *ast.Binary:
		l, err := r.rewriteQualityFuncs(x.L)
		if err != nil {
			return nil, err
		}
		rr, err := r.rewriteQualityFuncs(x.R)
		if err != nil {
			return nil, err
		}
		return &ast.Binary{Op: x.Op, L: l, R: rr}, nil
	case *ast.Unary:
		sub, err := r.rewriteQualityFuncs(x.X)
		if err != nil {
			return nil, err
		}
		return &ast.Unary{Op: x.Op, X: sub}, nil
	}
	return e, nil
}

// qualityExpr builds the SQL form of one quality function application.
func (r *rewriter) qualityExpr(name string, bp *basePref) (ast.Expr, error) {
	zero := &ast.Literal{Val: value.NewInt(0)}
	one := &ast.Literal{Val: value.NewInt(1)}
	two := &ast.Literal{Val: value.NewInt(2)}

	if bp.explicit != nil {
		// LEVEL: depth+1 per mentioned value, bottom otherwise.
		info := bp.explicit
		col := &ast.Column{Name: bp.exvCol()}
		switch name {
		case "LEVEL":
			var whens []ast.WhenClause
			for _, v := range info.mentioned {
				whens = append(whens, ast.WhenClause{
					When: &ast.Binary{Op: "=", L: col, R: &ast.Literal{Val: v}},
					Then: &ast.Literal{Val: value.NewInt(int64(info.depth[v.Key()] + 1))},
				})
			}
			return &ast.Case{Whens: whens, Else: &ast.Literal{Val: value.NewInt(int64(info.maxDepth + 2))}}, nil
		case "TOP":
			var tops []ast.Expr
			for _, v := range info.mentioned {
				if info.depth[v.Key()] == 0 {
					tops = append(tops, &ast.Literal{Val: v})
				}
			}
			if len(tops) == 0 {
				return &ast.Literal{Val: value.NewBool(false)}, nil
			}
			return &ast.InList{X: col, List: tops}, nil
		default:
			return nil, fmt.Errorf("rewrite: DISTANCE is undefined for EXPLICIT preferences")
		}
	}

	lvl := &ast.Column{Name: bp.lvlCol()}
	dist := ast.Expr(lvl)
	if bp.relative {
		// LOWEST/HIGHEST: distance to the best candidate value.
		minSub := &ast.ScalarSub{Sub: &ast.Select{
			Items: []ast.SelectItem{{Expr: &ast.FuncCall{Name: "MIN", Args: []ast.Expr{&ast.Column{Name: bp.lvlCol()}}}}},
			From:  []ast.TableRef{&ast.BaseTable{Name: r.auxView}},
			Limit: -1,
		}}
		dist = &ast.Binary{Op: "-", L: lvl, R: minSub}
	}
	switch name {
	case "DISTANCE":
		return dist, nil
	case "TOP":
		return &ast.Binary{Op: "=", L: dist, R: zero}, nil
	case "LEVEL":
		if bp.discrete {
			return &ast.Binary{Op: "+", L: lvl, R: one}, nil
		}
		return &ast.Case{
			Whens: []ast.WhenClause{{When: &ast.Binary{Op: "=", L: dist, R: zero}, Then: one}},
			Else:  two,
		}, nil
	}
	return nil, fmt.Errorf("rewrite: unknown quality function %s", name)
}
