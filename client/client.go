// Package client is the Preference SQL network client: it speaks the
// internal/wire protocol to a prefserve instance and mirrors the
// embedded prefsql API (Exec, Query, MustExec, QueryIter,
// QueryProgressive, SetMode, SetAlgorithm), so application code runs
// unmodified against either an embedded database or a remote server:
//
//	db, err := client.Dial("localhost:7654")
//	defer db.Close()
//	res, err := db.Query(`SELECT * FROM trips PREFERRING duration AROUND 14`)
//
// Single-SELECT queries stream: QueryIter yields rows as the server's
// pipeline produces them (progressively for score-based preferences),
// and closing the iterator early sends a Cancel that stops the server's
// remaining dominance work.
//
// A Conn multiplexes nothing: one statement is in flight at a time and
// methods serialize on an internal lock. Use one Conn per goroutine (or
// a pool) for parallelism — connections are cheap, and each carries its
// own server-side session settings.
package client

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bmo"
	"repro/internal/core"
	"repro/internal/parser"
	"repro/internal/value"
	"repro/internal/wire"
)

// Result/Row/Mode/Algorithm are aliases of the same types the embedded
// prefsql package exports, so code can switch between embedded and
// remote by changing only construction. (The client deliberately does
// not import the root package: the root package's tests drive the bench
// harness, which drives this client.)
type (
	Result    = core.Result
	Row       = value.Row
	Mode      = core.Mode
	Algorithm = bmo.Algorithm
	// QueryStats is one statement's server-side execution statistics
	// (latency, work counters, annotated plan); see RequestStats.
	QueryStats = wire.QueryStats
)

// Statement flags reported by the server with each result.
const (
	// FlagCacheHit: the statement text was answered from the server's
	// prepared-statement cache (parse skipped).
	FlagCacheHit = wire.FlagCacheHit
	// FlagPlanReused: a cached plan was re-executed (planner skipped).
	FlagPlanReused = wire.FlagPlanReused
	// FlagCancelled: the row stream was cut short by Cancel.
	FlagCancelled = wire.FlagCancelled
)

// Conn is one client connection to a Preference SQL server.
type Conn struct {
	mu     sync.Mutex  // serializes request/response exchanges
	wmu    sync.Mutex  // serializes frame writes (Cancel may overtake an exchange)
	busy   bool        // an open Rows stream owns the connection
	closed atomic.Bool // safe to read from any goroutine
	nc     net.Conn
	br     *bufio.Reader
	bw     *bufio.Writer
	sessID uint32
	banner string

	wantStats atomic.Bool                // RequestStats toggle
	lastStats atomic.Pointer[QueryStats] // most recent Stats frame
}

// RequestStats asks the server to attach execution statistics to every
// subsequent Query on this connection: latency, the engine's work
// counters, and the per-operator annotated plan. Fetch them with
// LastStats after the statement (or stream) completes.
func (c *Conn) RequestStats(on bool) { c.wantStats.Store(on) }

// LastStats returns the most recent statement's server-side statistics,
// or nil when none have been received (RequestStats off, or the
// statement failed before recording).
func (c *Conn) LastStats() *QueryStats { return c.lastStats.Load() }

// Dial connects to a prefserve instance and performs the handshake.
// It is DialContext with a background context: no connect or handshake
// deadline beyond the operating system's own TCP timeouts.
func Dial(addr string) (*Conn, error) {
	return DialContext(context.Background(), addr)
}

// DialContext connects to a prefserve instance and performs the
// handshake, honoring ctx for both the TCP connect and the handshake
// exchange: a hung or blackholed host fails when ctx does instead of
// blocking the caller forever. Coordinator→shard dials in internal/dist
// depend on this. The deadline is lifted once the handshake completes;
// it does not bound later statements (use per-call contexts for that).
func DialContext(ctx context.Context, addr string) (*Conn, error) {
	var d net.Dialer
	nc, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, err
	}
	// The handshake is a blocking read; ctx alone cannot interrupt it, so
	// mirror its deadline onto the socket and watch for cancellation. The
	// deadline is cleared on the way out (LIFO after the watcher stops, so
	// the watcher cannot re-poison a successful connection).
	defer nc.SetDeadline(time.Time{})
	if dl, ok := ctx.Deadline(); ok {
		if err := nc.SetDeadline(dl); err != nil {
			nc.Close()
			return nil, err
		}
	}
	if ctx.Done() != nil {
		shaken := make(chan struct{})
		defer close(shaken)
		go func() {
			select {
			case <-ctx.Done():
				nc.SetDeadline(time.Unix(1, 0)) // force pending I/O to fail
			case <-shaken:
			}
		}()
	}
	c := &Conn{nc: nc, br: bufio.NewReader(nc), bw: bufio.NewWriter(nc)}
	var b wire.Buffer
	b.U16(wire.Version)
	b.String("prefsql-go-client")
	if err := c.send(wire.MsgHello, b.B); err != nil {
		nc.Close()
		return nil, err
	}
	typ, payload, err := wire.ReadFrame(c.br)
	if err != nil {
		nc.Close()
		return nil, fmt.Errorf("client: handshake: %w", err)
	}
	if typ != wire.MsgHelloOK {
		nc.Close()
		return nil, fmt.Errorf("client: handshake: unexpected message %#x", typ)
	}
	r := wire.NewReader(payload)
	if v := r.U16(); v != wire.Version {
		nc.Close()
		return nil, fmt.Errorf("client: server speaks protocol %d, want %d", v, wire.Version)
	}
	c.sessID = r.U32()
	c.banner = r.String()
	if err := r.Err(); err != nil {
		nc.Close()
		return nil, err
	}
	return c, nil
}

// SessionID returns the server-assigned session id.
func (c *Conn) SessionID() uint32 { return c.sessID }

// Banner returns the server's handshake banner.
func (c *Conn) Banner() string { return c.banner }

// Close closes the connection (sending Quit first when no stream is in
// flight). Safe to call twice, and from any goroutine — closing a Conn
// whose Rows iterator leaked unblocks the stream with an error rather
// than waiting for it.
func (c *Conn) Close() error {
	if c.closed.Swap(true) {
		return nil
	}
	// Best-effort Quit: only if the connection is idle right now. A
	// TryLock keeps Close from blocking behind a hung exchange.
	if c.mu.TryLock() {
		if !c.busy {
			_ = c.send(wire.MsgQuit, nil)
		}
		c.mu.Unlock()
	}
	return c.nc.Close()
}

func (c *Conn) send(typ byte, payload []byte) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if err := wire.WriteFrame(c.bw, typ, payload); err != nil {
		return err
	}
	return c.bw.Flush()
}

// watch arms a context watchdog for one exchange: when ctx is cancelled
// it sends a Cancel frame, which the server maps onto the in-flight
// statement's execution context (stopping scans mid-table) and onto the
// row stream (cut short with FlagCancelled). stop disarms the watchdog
// and JOINS the goroutine: after stop returns, any Cancel it was going
// to send is fully on the wire. Combined with the exchange lock (the
// next statement's frame cannot be written until stop has run) and the
// server's in-order frame processing (a Cancel ahead of a Query is
// dropped when the statement begins), a cancel that races statement
// completion can never cut down the connection's next statement.
func (c *Conn) watch(ctx context.Context) (stop func()) {
	if ctx == nil || ctx.Done() == nil {
		return func() {}
	}
	quit := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		select {
		case <-ctx.Done():
			if !c.closed.Load() {
				_ = c.send(wire.MsgCancel, nil)
			}
		case <-quit:
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			close(quit)
			<-done
		})
	}
}

// broken marks the connection unusable after a protocol-level failure.
func (c *Conn) broken(err error) error {
	if !c.closed.Swap(true) {
		c.nc.Close()
	}
	return err
}

// ErrClosed is returned by operations on a closed connection.
var ErrClosed = errors.New("client: connection closed")

// ErrBusy is returned when a statement is attempted while an open Rows
// stream owns the connection; Close the iterator first.
var ErrBusy = errors.New("client: connection busy with an open Rows stream")

// acquire takes the exchange lock for one request/response, rejecting
// closed or stream-occupied connections instead of blocking on them.
func (c *Conn) acquire() error {
	if c.closed.Load() {
		return ErrClosed
	}
	c.mu.Lock()
	if c.closed.Load() || c.busy {
		busy := c.busy
		c.mu.Unlock()
		if busy {
			return ErrBusy
		}
		return ErrClosed
	}
	return nil
}

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

// Exec runs a ';'-separated script on the server and returns the last
// statement's result.
func (c *Conn) Exec(sql string) (*Result, error) {
	res, _, err := c.ExecFlags(sql)
	return res, err
}

// ExecContext is Exec with a cancellation context and positional bind
// arguments: `?` / `$n` placeholders bind to args (converted with the
// same rules as the embedded API), and cancelling ctx sends a Cancel
// that stops the server-side execution.
func (c *Conn) ExecContext(ctx context.Context, sql string, args ...any) (*Result, error) {
	res, _, err := c.ExecFlagsContext(ctx, sql, args...)
	return res, err
}

// Query runs a single SELECT (standard or Preference SQL); like the
// embedded DB.Query it is the read-only path and rejects anything else
// — use Exec for scripts and DML/DDL. The shape check runs client-side
// so a remote connection keeps exactly the embedded API's contract; the
// server executes SELECTs under its shared read lock and streams.
func (c *Conn) Query(sql string) (*Result, error) {
	return c.QueryContext(context.Background(), sql)
}

// QueryContext is Query with a cancellation context and bind arguments.
func (c *Conn) QueryContext(ctx context.Context, sql string, args ...any) (*Result, error) {
	if _, nparams, err := parser.ParseSelectCount(sql); err != nil {
		return nil, err
	} else if nparams != len(args) {
		return nil, fmt.Errorf("client: statement has %d bind parameter(s), got %d argument(s)", nparams, len(args))
	}
	res, _, err := c.ExecFlagsContext(ctx, sql, args...)
	return res, err
}

// MustExec is Exec that panics on error; for examples and tests.
func (c *Conn) MustExec(sql string) *Result {
	res, err := c.Exec(sql)
	if err != nil {
		panic("client: " + err.Error())
	}
	return res
}

// ExecFlags is Exec plus the server's statement flags (FlagCacheHit,
// FlagPlanReused), which report how much cached work the server skipped.
func (c *Conn) ExecFlags(sql string) (*Result, byte, error) {
	return c.ExecFlagsContext(context.Background(), sql)
}

// ExecFlagsContext is ExecContext plus the server's statement flags.
func (c *Conn) ExecFlagsContext(ctx context.Context, sql string, args ...any) (*Result, byte, error) {
	vals, err := value.FromGoArgs(args)
	if err != nil {
		return nil, 0, fmt.Errorf("client: %w", err)
	}
	if ctx != nil && ctx.Err() != nil {
		return nil, 0, ctx.Err()
	}
	if err := c.acquire(); err != nil {
		return nil, 0, err
	}
	defer c.mu.Unlock()
	stop := c.watch(ctx)
	defer stop()
	var b wire.Buffer
	b.String(sql)
	b.Values(vals)
	if c.wantStats.Load() {
		c.lastStats.Store(nil) // don't let a stale snapshot pass for this statement's
		b.U8(wire.QueryFlagWantStats)
	}
	if err := c.send(wire.MsgQuery, b.B); err != nil {
		return nil, 0, c.broken(err)
	}
	res, flags, err := c.collect()
	// The exchange completed at the protocol level, but the caller's
	// context is authoritative: a cancelled context reports its error
	// even when the server's statement raced to completion.
	if err == nil && ctx != nil && ctx.Err() != nil {
		return nil, flags, ctx.Err()
	}
	return res, flags, err
}

// collect reads Columns/Row*/Done (or Error) into a materialized result.
// The caller holds c.mu.
func (c *Conn) collect() (*Result, byte, error) {
	res := &Result{}
	for {
		typ, payload, err := wire.ReadFrame(c.br)
		if err != nil {
			return nil, 0, c.broken(err)
		}
		r := wire.NewReader(payload)
		switch typ {
		case wire.MsgColumns:
			res.Columns = r.Strings()
		case wire.MsgRow:
			res.Rows = append(res.Rows, r.Row())
		case wire.MsgStats:
			qs := wire.DecodeQueryStats(r)
			if err := r.Err(); err != nil {
				return nil, 0, c.broken(err)
			}
			c.lastStats.Store(&qs)
		case wire.MsgDone:
			affected := r.U32()
			r.U32() // row count, implied by len(res.Rows)
			flags := r.U8()
			if err := r.Err(); err != nil {
				return nil, 0, c.broken(err)
			}
			res.Affected = int(affected)
			return res, flags, nil
		case wire.MsgError:
			return nil, 0, errors.New(r.String())
		default:
			return nil, 0, c.broken(fmt.Errorf("client: unexpected message %#x", typ))
		}
		if err := r.Err(); err != nil {
			return nil, 0, c.broken(err)
		}
	}
}

// ---------------------------------------------------------------------------
// Streaming
// ---------------------------------------------------------------------------

// Rows is a streaming result iterator, modelled on the embedded
// prefsql.Rows / database/sql.Rows. The connection is busy until Close.
type Rows struct {
	c       *Conn
	cols    []string
	row     Row
	err     error
	done    bool
	flags   byte
	ctx     context.Context // nil when opened without a context
	unwatch func()          // disarms the context watchdog
}

// QueryIter runs a single SELECT and returns a streaming iterator. Rows
// arrive as the server's pipeline produces them; Close before the end
// sends a Cancel so the server stops the remaining work (the
// progressive-cursor cancel of mobile search, §4.2).
func (c *Conn) QueryIter(sql string) (*Rows, error) {
	return c.QueryIterContext(context.Background(), sql)
}

// QueryIterContext is QueryIter with a cancellation context and bind
// arguments. Cancelling ctx while the stream is open sends a Cancel: the
// server stops the pipeline (mid-scan included), the stream ends, and
// Err() reports ctx's error.
func (c *Conn) QueryIterContext(ctx context.Context, sql string, args ...any) (*Rows, error) {
	vals, err := value.FromGoArgs(args)
	if err != nil {
		return nil, fmt.Errorf("client: %w", err)
	}
	if ctx != nil && ctx.Err() != nil {
		return nil, ctx.Err()
	}
	if err := c.acquire(); err != nil {
		return nil, err
	}
	unwatch := c.watch(ctx)
	fail := func(err error) (*Rows, error) {
		unwatch()
		c.mu.Unlock()
		return nil, err
	}
	var b wire.Buffer
	b.String(sql)
	b.Values(vals)
	if c.wantStats.Load() {
		c.lastStats.Store(nil)
		b.U8(wire.QueryFlagWantStats)
	}
	if err := c.send(wire.MsgQuery, b.B); err != nil {
		return fail(c.broken(err))
	}
	// First frame must be the header (or an immediate error).
	typ, payload, err := wire.ReadFrame(c.br)
	if err != nil {
		return fail(c.broken(err))
	}
	r := wire.NewReader(payload)
	switch typ {
	case wire.MsgColumns:
		cols := r.Strings()
		if err := r.Err(); err != nil {
			return fail(c.broken(err))
		}
		// The stream owns the connection until Rows.Close; concurrent
		// statements get ErrBusy instead of blocking. The watchdog stays
		// armed for the stream's lifetime.
		c.busy = true
		c.mu.Unlock()
		return &Rows{c: c, cols: cols, ctx: ctx, unwatch: unwatch}, nil
	case wire.MsgError:
		unwatch()
		c.mu.Unlock()
		return nil, errors.New(r.String())
	case wire.MsgDone:
		// Statement produced no result set (e.g. DML text); present an
		// empty, already-done iterator carrying the server's flags.
		r.U32()
		r.U32()
		flags := r.U8()
		if err := r.Err(); err != nil {
			return fail(c.broken(err))
		}
		unwatch()
		c.mu.Unlock()
		return &Rows{c: c, done: true, flags: flags}, nil
	default:
		return fail(c.broken(fmt.Errorf("client: unexpected message %#x", typ)))
	}
}

// Columns returns the result column names.
func (r *Rows) Columns() []string { return r.cols }

// Next advances to the next row; false at the end or on error (see Err).
func (r *Rows) Next() bool {
	if r.done || r.err != nil {
		return false
	}
	if r.ctx != nil {
		if cerr := r.ctx.Err(); cerr != nil {
			// The watchdog's Cancel may have raced a statement boundary;
			// Close re-sends it and drains, so the connection stays usable.
			_ = r.Close()
			if r.err == nil {
				r.err = cerr
			}
			return false
		}
	}
	typ, payload, err := wire.ReadFrame(r.c.br)
	if err != nil {
		r.err = r.c.broken(err)
		r.finish()
		return false
	}
	rd := wire.NewReader(payload)
	switch typ {
	case wire.MsgRow:
		row := rd.Row()
		if err := rd.Err(); err != nil {
			r.err = r.c.broken(err)
			r.finish()
			return false
		}
		r.row = row
		return true
	case wire.MsgStats:
		// The stream's statistics arrive between the last row and Done;
		// stash them and keep pulling for the Done frame.
		qs := wire.DecodeQueryStats(rd)
		if err := rd.Err(); err != nil {
			r.err = r.c.broken(err)
			r.finish()
			return false
		}
		r.c.lastStats.Store(&qs)
		return r.Next()
	case wire.MsgDone:
		rd.U32()
		rd.U32()
		r.flags = rd.U8()
		if err := rd.Err(); err != nil {
			r.err = r.c.broken(err)
		}
		// A stream cut short by our own context reports the context's
		// error, matching the embedded cursor's behaviour.
		if r.err == nil && r.flags&wire.FlagCancelled != 0 && r.ctx != nil && r.ctx.Err() != nil {
			r.err = r.ctx.Err()
		}
		r.finish()
		return false
	case wire.MsgError:
		r.err = errors.New(rd.String())
		r.finish()
		return false
	default:
		r.err = r.c.broken(fmt.Errorf("client: unexpected message %#x", typ))
		r.finish()
		return false
	}
}

// finish marks the stream complete and releases the connection.
func (r *Rows) finish() {
	if !r.done {
		r.done = true
		if r.unwatch != nil {
			r.unwatch()
		}
		r.c.mu.Lock()
		r.c.busy = false
		r.c.mu.Unlock()
	}
}

// Row returns the current row; valid after Next returned true.
func (r *Rows) Row() Row { return r.row }

// Err returns the first error encountered while streaming.
func (r *Rows) Err() error { return r.err }

// Flags returns the server's statement flags, valid once the stream has
// ended (Next returned false or Close drained it).
func (r *Rows) Flags() byte { return r.flags }

// Close releases the iterator. If rows remain, it sends Cancel and
// drains the stream so the connection is ready for the next statement.
// Safe to call more than once.
func (r *Rows) Close() error {
	if r.done {
		return nil
	}
	if !r.c.closed.Load() {
		if err := r.c.send(wire.MsgCancel, nil); err != nil {
			r.err = r.c.broken(err)
			r.finish()
			return r.err
		}
	}
	for {
		typ, payload, err := wire.ReadFrame(r.c.br)
		if err != nil {
			r.err = r.c.broken(err)
			r.finish()
			return r.err
		}
		switch typ {
		case wire.MsgDone:
			rd := wire.NewReader(payload)
			rd.U32()
			rd.U32()
			r.flags = rd.U8()
			if err := rd.Err(); err != nil {
				r.err = r.c.broken(err)
			}
			r.finish()
			return nil
		case wire.MsgError:
			r.err = errors.New(wire.NewReader(payload).String())
			r.finish()
			return nil
		case wire.MsgRow:
			// discard in-flight rows
		case wire.MsgStats:
			rd := wire.NewReader(payload)
			qs := wire.DecodeQueryStats(rd)
			if rd.Err() == nil {
				r.c.lastStats.Store(&qs)
			}
		default:
			r.err = r.c.broken(fmt.Errorf("client: unexpected message %#x", typ))
			r.finish()
			return r.err
		}
	}
}

// QueryProgressive streams a preference query's Best-Matches-Only set:
// yield is called with each row as the server reports it maximal, and
// returning false cancels the remaining server-side work. It returns the
// result column names.
func (c *Conn) QueryProgressive(sql string, yield func(Row) bool) ([]string, error) {
	return c.QueryProgressiveContext(context.Background(), sql, yield)
}

// QueryProgressiveContext is QueryProgressive with a cancellation context
// and bind arguments; cancelling ctx stops the remaining server-side work
// exactly like yield returning false.
func (c *Conn) QueryProgressiveContext(ctx context.Context, sql string, yield func(Row) bool, args ...any) ([]string, error) {
	rows, err := c.QueryIterContext(ctx, sql, args...)
	if err != nil {
		return nil, err
	}
	defer rows.Close()
	for rows.Next() {
		if !yield(rows.Row()) {
			break
		}
	}
	if err := rows.Err(); err != nil {
		return nil, err
	}
	return rows.Columns(), nil
}

// ---------------------------------------------------------------------------
// Prepared statements
// ---------------------------------------------------------------------------

// Stmt is a server-side prepared statement: parsed once (and, for plain
// SELECTs, planned once) on the server, re-executed by id with fresh bind
// arguments — distinct argument values share the one cached plan.
type Stmt struct {
	c         *Conn
	id        uint32
	sql       string
	numParams int
}

// Prepare registers sql in the server's statement cache and returns a
// handle for repeated execution.
func (c *Conn) Prepare(sql string) (*Stmt, error) {
	if err := c.acquire(); err != nil {
		return nil, err
	}
	defer c.mu.Unlock()
	var b wire.Buffer
	b.String(sql)
	if err := c.send(wire.MsgPrepare, b.B); err != nil {
		return nil, c.broken(err)
	}
	typ, payload, err := wire.ReadFrame(c.br)
	if err != nil {
		return nil, c.broken(err)
	}
	r := wire.NewReader(payload)
	switch typ {
	case wire.MsgPrepared:
		id := r.U32()
		np := int(r.U16())
		if err := r.Err(); err != nil {
			return nil, c.broken(err)
		}
		return &Stmt{c: c, id: id, sql: sql, numParams: np}, nil
	case wire.MsgError:
		return nil, errors.New(r.String())
	default:
		return nil, c.broken(fmt.Errorf("client: unexpected message %#x", typ))
	}
}

// SQL returns the statement text.
func (s *Stmt) SQL() string { return s.sql }

// NumParams reports the statement's positional bind parameter count;
// every execution must supply exactly this many arguments.
func (s *Stmt) NumParams() int { return s.numParams }

// Exec re-executes the prepared statement with the given bind arguments.
func (s *Stmt) Exec(args ...any) (*Result, error) {
	res, _, err := s.ExecFlags(args...)
	return res, err
}

// ExecContext is Exec with a cancellation context.
func (s *Stmt) ExecContext(ctx context.Context, args ...any) (*Result, error) {
	res, _, err := s.ExecFlagsContext(ctx, args...)
	return res, err
}

// ExecFlags is Exec plus the server's statement flags; FlagPlanReused
// reports that the server skipped the planner.
func (s *Stmt) ExecFlags(args ...any) (*Result, byte, error) {
	return s.ExecFlagsContext(context.Background(), args...)
}

// ExecFlagsContext is ExecContext plus the server's statement flags.
func (s *Stmt) ExecFlagsContext(ctx context.Context, args ...any) (*Result, byte, error) {
	vals, err := value.FromGoArgs(args)
	if err != nil {
		return nil, 0, fmt.Errorf("client: %w", err)
	}
	if len(vals) != s.numParams {
		return nil, 0, fmt.Errorf("client: statement has %d bind parameter(s), got %d argument(s)",
			s.numParams, len(vals))
	}
	if ctx != nil && ctx.Err() != nil {
		return nil, 0, ctx.Err()
	}
	c := s.c
	if err := c.acquire(); err != nil {
		return nil, 0, err
	}
	defer c.mu.Unlock()
	stop := c.watch(ctx)
	defer stop()
	var b wire.Buffer
	b.U32(s.id)
	b.Values(vals)
	if err := c.send(wire.MsgExecute, b.B); err != nil {
		return nil, 0, c.broken(err)
	}
	res, flags, err := c.collect()
	if err == nil && ctx != nil && ctx.Err() != nil {
		return nil, flags, ctx.Err()
	}
	return res, flags, err
}

// Close releases the server-side handle (the cache entry may live on
// for other connections).
func (s *Stmt) Close() error {
	c := s.c
	if err := c.acquire(); err != nil {
		if err == ErrClosed {
			return nil
		}
		return err
	}
	defer c.mu.Unlock()
	var b wire.Buffer
	b.U32(s.id)
	if err := c.send(wire.MsgCloseStmt, b.B); err != nil {
		return c.broken(err)
	}
	_, _, err := c.collect()
	return err
}

// ---------------------------------------------------------------------------
// Session settings
// ---------------------------------------------------------------------------

func (c *Conn) set(key, val string) error {
	if err := c.acquire(); err != nil {
		return err
	}
	defer c.mu.Unlock()
	var b wire.Buffer
	b.String(key)
	b.String(val)
	if err := c.send(wire.MsgSet, b.B); err != nil {
		return c.broken(err)
	}
	_, _, err := c.collect()
	return err
}

// Explain modes accepted by Conn.Explain, mirroring the embedded API:
// ExplainRewrite is prefsql's ExplainRewrite (the preference → SQL92
// script), ExplainPlan its ExplainNative (the operator plan), and
// ExplainAnalyze its ExplainAnalyze (executed, with per-node stats).
const (
	ExplainRewrite = wire.ExplainRewrite
	ExplainPlan    = wire.ExplainPlan
	ExplainAnalyze = wire.ExplainAnalyze
)

// Explain renders a statement's plan on the server and returns the plan
// text, so remote (and shard-annotated) plans are visible without local
// access to the server's catalog. Old servers answer with an "unknown
// message" error.
func (c *Conn) Explain(mode byte, sql string) (string, error) {
	return c.ExplainContext(context.Background(), mode, sql)
}

// ExplainContext is Explain with a context; note ExplainAnalyze executes
// the statement server-side, so cancellation behaves like a query cancel.
func (c *Conn) ExplainContext(ctx context.Context, mode byte, sql string) (string, error) {
	if err := c.acquire(); err != nil {
		return "", err
	}
	defer c.mu.Unlock()
	stop := c.watch(ctx)
	defer stop()
	var b wire.Buffer
	b.U8(mode)
	b.String(sql)
	if err := c.send(wire.MsgExplain, b.B); err != nil {
		return "", c.broken(err)
	}
	typ, payload, err := wire.ReadFrame(c.br)
	if err != nil {
		return "", c.broken(err)
	}
	r := wire.NewReader(payload)
	switch typ {
	case wire.MsgPlanText:
		text := r.String()
		if err := r.Err(); err != nil {
			return "", c.broken(err)
		}
		return text, nil
	case wire.MsgError:
		return "", errors.New(r.String())
	default:
		return "", c.broken(fmt.Errorf("client: unexpected message %#x", typ))
	}
}

// SetMode switches this connection's session between native BMO
// evaluation and SQL92 rewriting; other connections are unaffected.
func (c *Conn) SetMode(m Mode) error {
	val := "native"
	if m == core.ModeRewrite {
		val = "rewrite"
	}
	return c.set(wire.SetMode, val)
}

// SetAlgorithm selects this connection's native BMO algorithm.
func (c *Conn) SetAlgorithm(a Algorithm) error {
	val := a.Token()
	if val == "" {
		return fmt.Errorf("client: unknown algorithm %v", a)
	}
	return c.set(wire.SetAlgorithm, val)
}

// SetWorkers caps this connection's parallel BMO worker count on the
// server; 0 (the default) uses one worker per server CPU.
func (c *Conn) SetWorkers(n int) error {
	if n < 0 {
		return fmt.Errorf("client: workers must be non-negative, got %d", n)
	}
	return c.set(wire.SetWorkers, strconv.Itoa(n))
}

// SetVectorized enables or disables the server-side planner's vectorized
// BMO selection for this connection's session (on by default).
func (c *Conn) SetVectorized(on bool) error {
	val := "off"
	if on {
		val = "on"
	}
	return c.set(wire.SetVectorized, val)
}

// ---------------------------------------------------------------------------
// Continuous queries
// ---------------------------------------------------------------------------

// Delta ops, mirroring the wire encoding.
const (
	// DeltaAdd: the row entered the live result set.
	DeltaAdd = wire.DeltaAdd
	// DeltaRemove: the row left the live result set.
	DeltaRemove = wire.DeltaRemove
)

// Delta is one incremental change to a subscription's result set. Seq
// numbers are contiguous from 1 per subscription; a gap means deltas
// were lost (which the protocol does not allow — treat it as a bug).
type Delta struct {
	Seq int64
	Op  byte // DeltaAdd or DeltaRemove
	Row Row
}

// ErrEvicted reports that the server terminated the subscription because
// this client consumed deltas slower than writers produced them (the
// bounded server-side queue overflowed). Re-subscribe to resume; the
// fresh Initial set restores a consistent state.
var ErrEvicted = errors.New("client: subscription evicted (slow consumer)")

// Sub is a live continuous-query stream. The connection is busy until
// Close: run other statements on their own Conn.
type Sub struct {
	c       *Conn
	id      uint32
	cols    []string
	initial []Row
	delta   Delta
	err     error
	done    bool
	ctx     context.Context
	unwatch func()
}

// Subscribe registers a continuous query (`SUBSCRIBE SELECT ... FROM t
// [WHERE ...] [PREFERRING ...]`; the SUBSCRIBE keyword is optional) and
// returns its live stream: Initial holds the result set frozen at
// registration, and Next yields every later change as writers commit.
// Cancelling ctx closes the subscription. queue semantics are server
// side: fall a full queue behind and the server evicts the stream
// (Err() == ErrEvicted) rather than slowing writers down.
func (c *Conn) Subscribe(ctx context.Context, sql string, args ...any) (*Sub, error) {
	return c.SubscribeBuffered(ctx, 0, sql, args...)
}

// SubscribeBuffered is Subscribe with an explicit server-side delta
// queue capacity (0 means the server default). Small queues evict
// sooner; large queues absorb longer consumer stalls at the cost of
// server memory.
func (c *Conn) SubscribeBuffered(ctx context.Context, queue int, sql string, args ...any) (*Sub, error) {
	if queue < 0 {
		return nil, fmt.Errorf("client: queue must be non-negative, got %d", queue)
	}
	vals, err := value.FromGoArgs(args)
	if err != nil {
		return nil, fmt.Errorf("client: %w", err)
	}
	if ctx != nil && ctx.Err() != nil {
		return nil, ctx.Err()
	}
	if err := c.acquire(); err != nil {
		return nil, err
	}
	// The stock watchdog works for subscriptions too: Cancel maps onto
	// the registration's statement context server-side, which closes the
	// subscription and ends the stream with FlagCancelled.
	unwatch := c.watch(ctx)
	fail := func(err error) (*Sub, error) {
		unwatch()
		c.mu.Unlock()
		return nil, err
	}
	var b wire.Buffer
	b.U32(uint32(queue))
	b.String(sql)
	b.Values(vals)
	if err := c.send(wire.MsgSubscribe, b.B); err != nil {
		return fail(c.broken(err))
	}
	typ, payload, err := wire.ReadFrame(c.br)
	if err != nil {
		return fail(c.broken(err))
	}
	r := wire.NewReader(payload)
	switch typ {
	case wire.MsgError:
		unwatch()
		c.mu.Unlock()
		return nil, errors.New(r.String())
	case wire.MsgSubscribed:
	default:
		return fail(c.broken(fmt.Errorf("client: unexpected message %#x", typ)))
	}
	id := r.U32()
	cols := r.Strings()
	if err := r.Err(); err != nil {
		return fail(c.broken(err))
	}
	// The initial result set streams as Row frames closed by a Done.
	var initial []Row
collect:
	for {
		typ, payload, err := wire.ReadFrame(c.br)
		if err != nil {
			return fail(c.broken(err))
		}
		rd := wire.NewReader(payload)
		switch typ {
		case wire.MsgRow:
			initial = append(initial, rd.Row())
		case wire.MsgDone:
			break collect
		default:
			return fail(c.broken(fmt.Errorf("client: unexpected message %#x", typ)))
		}
		if err := rd.Err(); err != nil {
			return fail(c.broken(err))
		}
	}
	c.busy = true
	c.mu.Unlock()
	return &Sub{c: c, id: id, cols: cols, initial: initial, ctx: ctx, unwatch: unwatch}, nil
}

// ID returns the server-assigned subscription id.
func (s *Sub) ID() uint32 { return s.id }

// Columns returns the result column names.
func (s *Sub) Columns() []string { return s.cols }

// Initial returns the result set as of registration; deltas apply on
// top of it.
func (s *Sub) Initial() []Row { return s.initial }

// Next blocks for the next delta; false when the stream ended (see Err).
func (s *Sub) Next() bool {
	if s.done || s.err != nil {
		return false
	}
	if s.ctx != nil {
		if cerr := s.ctx.Err(); cerr != nil {
			_ = s.Close()
			if s.err == nil {
				s.err = cerr
			}
			return false
		}
	}
	typ, payload, err := wire.ReadFrame(s.c.br)
	if err != nil {
		s.err = s.c.broken(err)
		s.finish()
		return false
	}
	rd := wire.NewReader(payload)
	switch typ {
	case wire.MsgDelta:
		rd.U32() // subscription id, implied
		seq := rd.I64()
		op := rd.U8()
		row := rd.Row()
		if err := rd.Err(); err != nil {
			s.err = s.c.broken(err)
			s.finish()
			return false
		}
		s.delta = Delta{Seq: seq, Op: op, Row: row}
		return true
	case wire.MsgDone:
		rd.U32()
		rd.U32()
		flags := rd.U8()
		if err := rd.Err(); err != nil {
			s.err = s.c.broken(err)
		}
		if s.err == nil && flags&wire.FlagEvicted != 0 {
			s.err = ErrEvicted
		}
		if s.err == nil && flags&wire.FlagCancelled != 0 && s.ctx != nil && s.ctx.Err() != nil {
			s.err = s.ctx.Err()
		}
		s.finish()
		return false
	case wire.MsgError:
		s.err = errors.New(rd.String())
		s.finish()
		return false
	default:
		s.err = s.c.broken(fmt.Errorf("client: unexpected message %#x", typ))
		s.finish()
		return false
	}
}

// Delta returns the current change; valid after Next returned true.
func (s *Sub) Delta() Delta { return s.delta }

// Err returns the terminal error: nil after a clean close, ErrEvicted
// when the server dropped this consumer, the context's error when ctx
// ended the stream, or a transport error.
func (s *Sub) Err() error { return s.err }

// finish marks the stream complete and releases the connection.
func (s *Sub) finish() {
	if !s.done {
		s.done = true
		if s.unwatch != nil {
			s.unwatch()
		}
		s.c.mu.Lock()
		s.c.busy = false
		s.c.mu.Unlock()
	}
}

// Close unsubscribes and drains the stream so the connection is ready
// for the next statement. Queued deltas are discarded. Safe to call
// more than once.
func (s *Sub) Close() error {
	if s.done {
		return nil
	}
	if !s.c.closed.Load() {
		var b wire.Buffer
		b.U32(s.id)
		if err := s.c.send(wire.MsgUnsubscribe, b.B); err != nil {
			s.err = s.c.broken(err)
			s.finish()
			return s.err
		}
	}
	for {
		typ, payload, err := wire.ReadFrame(s.c.br)
		if err != nil {
			s.err = s.c.broken(err)
			s.finish()
			return s.err
		}
		switch typ {
		case wire.MsgDone:
			rd := wire.NewReader(payload)
			rd.U32()
			rd.U32()
			flags := rd.U8()
			if rd.Err() == nil && s.err == nil && flags&wire.FlagEvicted != 0 {
				s.err = ErrEvicted
			}
			s.finish()
			return nil
		case wire.MsgError:
			s.err = errors.New(wire.NewReader(payload).String())
			s.finish()
			return nil
		case wire.MsgDelta, wire.MsgRow:
			// discard in-flight deltas
		default:
			s.err = s.c.broken(fmt.Errorf("client: unexpected message %#x", typ))
			s.finish()
			return s.err
		}
	}
}
