// Benchmarks regenerating the paper's evaluation, one bench per table and
// figure (see DESIGN.md's experiment index):
//
//	BenchmarkE1JobSearch          — §3.3 table (strategies × pre-selection sizes)
//	BenchmarkE2Oldtimer           — §2.2.3 answer-explanation query
//	BenchmarkE3CarsRewrite        — §3.2 Cars rewriting end-to-end
//	BenchmarkE4Cosima             — §4.3 meta-search pipeline
//	BenchmarkE5Eshop              — §4.1 washing-machine search mask
//	BenchmarkAblationAlgorithms   — A1: BMO algorithms vs SQL92 rewriting
//	BenchmarkAblationDimensions   — A2: Pareto dimensionality × distribution
//
// Run with: go test -bench=. -benchmem
package prefsql

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/bench"
	"repro/internal/bmo"
	"repro/internal/core"
	"repro/internal/cosima"
	"repro/internal/datagen"
	"repro/internal/preference"
	"repro/internal/value"
)

// benchJobRows keeps the standing job relation small enough for iterated
// benchmarking; cmd/prefbench runs the full 140k-row version.
const benchJobRows = 30000

var (
	jobDBOnce sync.Once
	jobDB     *core.DB
	jobDBErr  error
)

func sharedJobDB(b *testing.B) *core.DB {
	b.Helper()
	jobDBOnce.Do(func() {
		cfg := bench.DefaultConfig()
		cfg.JobRows = benchJobRows
		jobDB, jobDBErr = bench.JobDB(cfg)
	})
	if jobDBErr != nil {
		b.Fatal(jobDBErr)
	}
	return jobDB
}

// BenchmarkE1JobSearch measures the three strategies of the §3.3 table for
// each pre-selection size. The paper's shape: Preference SQL answers in
// time comparable to plain SQL while returning the small BMO set.
func BenchmarkE1JobSearch(b *testing.B) {
	db := sharedJobDB(b)
	for _, pre := range []int{300, 600, 1000} {
		where := fmt.Sprintf("region = 'Bayern' AND id <= %d", pre*8) // ~1/8 per region
		strategies := []struct {
			name string
			sql  string
			mode core.Mode
		}{
			{"conjunctive", fmt.Sprintf(
				`SELECT id FROM jobs WHERE %s AND experience >= 10 AND education IN ('master','phd') AND age <= 35 AND mobility >= 100`, where), core.ModeNative},
			{"disjunctive", fmt.Sprintf(
				`SELECT id FROM jobs WHERE %s AND (experience >= 10 OR education IN ('master','phd') OR age <= 35 OR mobility >= 100)`, where), core.ModeNative},
			{"preference-native", fmt.Sprintf(
				`SELECT id FROM jobs WHERE %s PREFERRING experience >= 10 AND education IN ('master','phd') AND age <= 35 AND mobility >= 100`, where), core.ModeNative},
			{"preference-rewrite", fmt.Sprintf(
				`SELECT id FROM jobs WHERE %s PREFERRING experience >= 10 AND education IN ('master','phd') AND age <= 35 AND mobility >= 100`, where), core.ModeRewrite},
		}
		for _, s := range strategies {
			b.Run(fmt.Sprintf("pre=%d/%s", pre, s.name), func(b *testing.B) {
				db.SetMode(s.mode)
				defer db.SetMode(core.ModeNative)
				for i := 0; i < b.N; i++ {
					if _, err := db.Exec(s.sql); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkE2Oldtimer runs the §2.2.3 answer-explanation query.
func BenchmarkE2Oldtimer(b *testing.B) {
	db := core.Open()
	if err := datagen.Load(db.Engine(), "oldtimer", datagen.OldtimerColumns(), datagen.Oldtimers()); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := db.Exec(bench.OldtimerQuery)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) != 3 {
			b.Fatalf("rows: %d", len(res.Rows))
		}
	}
}

// BenchmarkE3CarsRewrite measures the §3.2 rewriting pipeline end-to-end
// (plan generation, view setup, NOT EXISTS query, teardown).
func BenchmarkE3CarsRewrite(b *testing.B) {
	db := core.Open()
	if _, err := db.Exec(`CREATE TABLE Cars (
		Identifier INTEGER, Make VARCHAR, Model VARCHAR,
		Price INTEGER, Mileage INTEGER, Airbag VARCHAR, Diesel VARCHAR);
	INSERT INTO Cars VALUES
		(1, 'Audi', 'A6', 40000, 15000, 'yes', 'no'),
		(2, 'BMW', '5 series', 35000, 30000, 'yes', 'yes'),
		(3, 'Volkswagen', 'Beetle', 20000, 10000, 'yes', 'no')`); err != nil {
		b.Fatal(err)
	}
	db.SetMode(core.ModeRewrite)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := db.Exec(bench.CarsQuery)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) != 2 {
			b.Fatalf("rows: %d", len(res.Rows))
		}
	}
}

// BenchmarkE4Cosima measures one full meta-search (gather + temp DB +
// Pareto preference) without shop latency, i.e. the Preference SQL
// overhead the paper calls "small".
func BenchmarkE4Cosima(b *testing.B) {
	shops := cosima.DefaultShops(4, 400, 0, 7)
	m := &cosima.MetaSearcher{Shops: shops}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, st, err := m.Search("book", "")
		if err != nil {
			b.Fatal(err)
		}
		if st.ResultSize == 0 {
			b.Fatal("empty result")
		}
	}
}

// BenchmarkE5Eshop measures the §4.1 washing-machine preference query.
func BenchmarkE5Eshop(b *testing.B) {
	db := core.Open()
	if err := datagen.Load(db.Engine(), "products", datagen.ApplianceColumns(), datagen.Appliances(300, 2002)); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Exec(bench.EshopPrefQuery); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationAlgorithms is A1: the native BMO algorithms against the
// SQL92 rewriting for growing candidate sets.
func BenchmarkAblationAlgorithms(b *testing.B) {
	db := sharedJobDB(b)
	pref := "PREFERRING salary AROUND 50000 AND HIGHEST(experience) AND age AROUND 30 AND mobility AROUND 100"
	for _, size := range []int{250, 500, 1000} {
		query := fmt.Sprintf("SELECT id FROM jobs WHERE id <= %d %s", size, pref)
		for _, algo := range []bmo.Algorithm{bmo.NestedLoop, bmo.BlockNestedLoop, bmo.SortFilter} {
			b.Run(fmt.Sprintf("n=%d/native-%s", size, algo), func(b *testing.B) {
				db.SetAlgorithm(algo)
				defer db.SetAlgorithm(bmo.Auto)
				for i := 0; i < b.N; i++ {
					if _, err := db.Exec(query); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
		b.Run(fmt.Sprintf("n=%d/sql92-rewrite", size), func(b *testing.B) {
			db.SetMode(core.ModeRewrite)
			defer db.SetMode(core.ModeNative)
			for i := 0; i < b.N; i++ {
				if _, err := db.Exec(query); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationDimensions is A2: BMO cost and size across Pareto
// dimensionality and data distribution.
func BenchmarkAblationDimensions(b *testing.B) {
	for _, dist := range []datagen.Distribution{datagen.Correlated, datagen.Independent, datagen.AntiCorrelated} {
		for _, d := range []int{2, 4} {
			rows := datagen.Skyline(2000, d, dist, 2002)
			parts := make([]preference.Preference, d)
			for j := 0; j < d; j++ {
				col := j + 1
				parts[j] = &preference.Lowest{
					Get:   func(r value.Row) (value.Value, error) { return r[col], nil },
					Label: fmt.Sprintf("d%d", col),
				}
			}
			p := &preference.Pareto{Parts: parts}
			b.Run(fmt.Sprintf("%s/d=%d", dist, d), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := bmo.Evaluate(p, rows, bmo.Auto); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkParserOpel measures parsing of the paper's most complex query.
func BenchmarkParserOpel(b *testing.B) {
	const q = `SELECT * FROM car WHERE make = 'Opel'
PREFERRING (category = 'roadster' ELSE category <> 'passenger' AND
price AROUND 40000 AND HIGHEST(power))
CASCADE color = 'red' CASCADE LOWEST(mileage)`
	db := Open()
	db.MustExec("CREATE TABLE car (make VARCHAR, category VARCHAR, price INT, power INT, color VARCHAR, mileage INT)")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Exec(q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineBaseline measures the plain-SQL substrate (scan + filter
// + order) to contextualize the preference overhead.
func BenchmarkEngineBaseline(b *testing.B) {
	db := sharedJobDB(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Exec("SELECT id FROM jobs WHERE region = 'Bayern' AND salary < 30000 ORDER BY salary LIMIT 10"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPipelineTopK compares full materializing evaluation of a
// preference TOP-k query (Exec: complete BMO set built, then truncated)
// against the streaming cursor, where the LIMIT consumer stops pulling and
// the progressive BMO operator skips the remaining dominance work. The
// rows-scanned/op metric shows how many base rows the pipeline touched
// (the indexed WHERE pre-selection probes instead of scanning).
func BenchmarkPipelineTopK(b *testing.B) {
	db := sharedJobDB(b)
	const q = `SELECT id FROM jobs WHERE region = 'Bayern'
PREFERRING salary AROUND 50000 AND HIGHEST(experience) AND mobility AROUND 100 LIMIT 5`
	b.Run("batch-exec", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := db.Exec(q)
			if err != nil {
				b.Fatal(err)
			}
			if len(res.Rows) == 0 {
				b.Fatal("empty result")
			}
		}
	})
	b.Run("pipeline-cursor", func(b *testing.B) {
		var scanned int64
		for i := 0; i < b.N; i++ {
			c, err := db.OpenCursor(q)
			if err != nil {
				b.Fatal(err)
			}
			n := 0
			for c.Next() {
				n++
			}
			if err := c.Err(); err != nil {
				b.Fatal(err)
			}
			if n == 0 {
				b.Fatal("empty result")
			}
			scanned += c.Stats().RowsScanned
			c.Close()
		}
		b.ReportMetric(float64(scanned)/float64(b.N), "rows-scanned/op")
	})
}

// BenchmarkPipelineIndexedWhere measures the planner's equality-predicate →
// index-scan selection: the same WHERE workload against the jobs relation
// with and without the region index. The rows-scanned/op metric drops from
// the full relation to one hash bucket.
func BenchmarkPipelineIndexedWhere(b *testing.B) {
	run := func(b *testing.B, db *core.DB) {
		const q = `SELECT id FROM jobs WHERE region = 'Bayern' AND salary < 30000 ORDER BY salary LIMIT 10`
		var scanned int64
		for i := 0; i < b.N; i++ {
			c, err := db.OpenCursor(q)
			if err != nil {
				b.Fatal(err)
			}
			for c.Next() {
			}
			if err := c.Err(); err != nil {
				b.Fatal(err)
			}
			scanned += c.Stats().RowsScanned
			c.Close()
		}
		b.ReportMetric(float64(scanned)/float64(b.N), "rows-scanned/op")
	}
	b.Run("indexed", func(b *testing.B) {
		run(b, sharedJobDB(b)) // bench.JobDB creates idx_jobs_region
	})
	b.Run("seqscan", func(b *testing.B) {
		db := core.Open()
		if err := datagen.Load(db.Engine(), "jobs", datagen.JobColumns(), datagen.Jobs(benchJobRows, 2002)); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		run(b, db)
	})
}
