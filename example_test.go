package prefsql_test

import (
	"fmt"

	prefsql "repro"
)

// The paper's introductory example: soft constraints return the best
// available matches instead of an empty result.
func Example() {
	db := prefsql.Open()
	db.MustExec(`CREATE TABLE trips (id INT, duration INT);
		INSERT INTO trips VALUES (1, 7), (2, 13), (3, 15), (4, 28)`)

	res := db.MustExec(`SELECT id, duration FROM trips
		PREFERRING duration AROUND 14 ORDER BY id`)
	for _, row := range res.Rows {
		fmt.Printf("trip %v, %v days\n", row[0], row[1])
	}
	// Output:
	// trip 2, 13 days
	// trip 3, 15 days
}

// Pareto accumulation (AND) returns the Pareto-optimal set: nobody in the
// answer is beaten on all criteria at once.
func ExampleDB_pareto() {
	db := prefsql.Open()
	db.MustExec(`CREATE TABLE computers (id INT, main_memory INT, cpu_speed INT);
		INSERT INTO computers VALUES (1, 512, 2000), (2, 256, 3000), (3, 128, 1500)`)

	res := db.MustExec(`SELECT id FROM computers
		PREFERRING HIGHEST(main_memory) AND HIGHEST(cpu_speed) ORDER BY id`)
	for _, row := range res.Rows {
		fmt.Println("computer", row[0])
	}
	// Output:
	// computer 1
	// computer 2
}

// Quality functions explain why a tuple is in the answer (§2.2.3).
func ExampleDB_qualityFunctions() {
	db := prefsql.Open()
	db.MustExec(`CREATE TABLE oldtimer (ident VARCHAR, color VARCHAR, age INT);
		INSERT INTO oldtimer VALUES
		('Maggie', 'white', 19), ('Bart', 'green', 19), ('Homer', 'yellow', 35),
		('Selma', 'red', 40), ('Smithers', 'red', 43), ('Skinner', 'yellow', 51)`)

	res := db.MustExec(`SELECT ident, LEVEL(color), DISTANCE(age) FROM oldtimer
		PREFERRING color = 'white' ELSE color = 'yellow' AND age AROUND 40
		ORDER BY DISTANCE(age)`)
	for _, row := range res.Rows {
		fmt.Printf("%s: color level %v, age distance %v\n", row[0].S, row[1], row[2])
	}
	// Output:
	// Selma: color level 3, age distance 0
	// Homer: color level 2, age distance 5
	// Maggie: color level 1, age distance 21
}

// ExplainRewrite shows the plain-SQL92 translation the commercial
// middleware shipped to the host database (§3.2).
func ExampleDB_ExplainRewrite() {
	db := prefsql.Open()
	db.MustExec(`CREATE TABLE t (a INT)`)
	script, _ := db.ExplainRewrite(`SELECT * FROM t PREFERRING LOWEST(a)`)
	fmt.Println(len(script) > 0)
	// Output:
	// true
}

// BUT ONLY enforces minimal quality standards: an empty result is then
// the user's explicit intention (§2.2.4).
func ExampleDB_butOnly() {
	db := prefsql.Open()
	db.MustExec(`CREATE TABLE trips (id INT, duration INT);
		INSERT INTO trips VALUES (1, 7), (2, 28)`)
	res := db.MustExec(`SELECT id FROM trips
		PREFERRING duration AROUND 14 BUT ONLY DISTANCE(duration) <= 2`)
	fmt.Println("matches:", len(res.Rows))
	// Output:
	// matches: 0
}
