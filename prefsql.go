package prefsql

import (
	"context"

	"repro/internal/bmo"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/live"
	"repro/internal/value"
)

// Value is one SQL value of a result row.
type Value = value.Value

// Row is one result tuple.
type Row = value.Row

// Result is the outcome of a statement: result columns and rows for
// queries, the affected-row count for DML.
type Result = engine.Result

// Mode selects how PREFERRING queries execute.
type Mode = core.Mode

// Execution modes: native skyline algorithms or the paper's §3.2
// rewriting to SQL92.
const (
	ModeNative  = core.ModeNative
	ModeRewrite = core.ModeRewrite
)

// Algorithm selects the native BMO algorithm.
type Algorithm = bmo.Algorithm

// Native BMO algorithms (see internal/bmo). Parallel is the
// partition-merge multicore path; Auto switches to it for candidate
// sets of 10k rows or more when more than one CPU is available.
const (
	Auto            = bmo.Auto
	NestedLoop      = bmo.NestedLoop
	BlockNestedLoop = bmo.BlockNestedLoop
	SortFilter      = bmo.SortFilter
	BestLevel       = bmo.BestLevel
	Parallel        = bmo.Parallel
	Vectorized      = bmo.Vectorized
)

// DB is an embedded Preference SQL database.
type DB struct {
	core *core.DB
}

// Open creates an empty in-memory Preference SQL database.
func Open() *DB { return &DB{core: core.Open()} }

// Exec parses and runs a ';'-separated SQL script (standard SQL and
// Preference SQL alike) and returns the last statement's result. It is a
// convenience wrapper over ExecContext with a background context and no
// arguments.
func (db *DB) Exec(sql string) (*Result, error) { return db.core.Exec(sql) }

// ExecContext is Exec with a cancellation context and positional bind
// arguments: `?` (or `$n`) placeholders in the script bind to args —
// Go ints, floats, strings, bools, time.Time (date part) and nil —
// and cancelling ctx stops in-flight scans. A parameterized statement
// parses (and, when prepared, plans) once and re-executes with fresh
// argument values.
func (db *DB) ExecContext(ctx context.Context, sql string, args ...any) (*Result, error) {
	return db.core.ExecContext(ctx, sql, args...)
}

// Query runs a single SELECT (standard or Preference SQL) through the
// read-only path: it takes only the shared read lock, so concurrent
// queries never serialize behind the write path. Non-SELECT statements
// are rejected — use Exec for scripts and DML/DDL. It is a convenience
// wrapper over QueryContext.
func (db *DB) Query(sql string) (*Result, error) { return db.core.Query(sql) }

// QueryContext is Query with a cancellation context and bind arguments.
func (db *DB) QueryContext(ctx context.Context, sql string, args ...any) (*Result, error) {
	return db.core.QueryContext(ctx, sql, args...)
}

// MustExec is Exec that panics on error; for examples and tests.
func (db *DB) MustExec(sql string) *Result {
	res, err := db.core.Exec(sql)
	if err != nil {
		panic("prefsql: " + err.Error())
	}
	return res
}

// SetMode switches between native BMO evaluation (default) and SQL92
// rewriting, the commercial middleware's strategy. It configures the
// default session; concurrent clients should use NewSession so they
// cannot flip each other's strategy mid-query.
func (db *DB) SetMode(m Mode) { db.core.SetMode(m) }

// SetAlgorithm selects the native BMO algorithm (default Auto) on the
// default session.
func (db *DB) SetAlgorithm(a Algorithm) { db.core.SetAlgorithm(a) }

// SetWorkers caps the parallel BMO worker count on the default session;
// 0 (the default) uses one worker per available CPU. Sessions can also
// set it per client with `SET workers = n`.
func (db *DB) SetWorkers(n int) { db.core.DefaultSession().SetWorkers(n) }

// SetPushdown enables or disables the preference-algebra join pushdown
// on the default session (on by default). Sessions can also set it per
// client with `SET pushdown = on|off`.
func (db *DB) SetPushdown(on bool) { db.core.DefaultSession().SetPushdown(on) }

// SetVectorized enables or disables the planner's vectorized BMO
// selection — the columnar batch-at-a-time skyline with zone-map
// pruning — on the default session (on by default). Sessions can also
// set it per client with `SET vectorized = on|off`.
func (db *DB) SetVectorized(on bool) { db.core.DefaultSession().SetVectorized(on) }

// Session is a per-client view of a shared database: it carries the
// client's mode and algorithm settings so concurrent clients don't
// interfere, and its queries run concurrently under the shared read lock
// while writes serialize.
type Session = core.Session

// NewSession creates an independent session over this database; see
// Session.
func (db *DB) NewSession() *Session { return db.core.NewSession() }

// ExplainRewrite returns the SQL92 script the Preference SQL optimizer
// would generate for a preference query (§3.2 of the paper).
func (db *DB) ExplainRewrite(sql string) (string, error) {
	plan, err := db.core.RewritePlan(sql)
	if err != nil {
		return "", err
	}
	return plan.Script(), nil
}

// ExplainNative renders the native operator plan of a SELECT — for
// preference queries the candidate pipeline with the BMO node on top,
// including the algorithm, the planner's statistics-derived parallelism
// hint and the session's worker cap.
func (db *DB) ExplainNative(sql string) (string, error) {
	return db.core.ExplainNative(sql)
}

// ExplainAnalyze executes a SELECT and renders its native plan annotated
// with runtime counters: the vectorized BMO node reports its zone-map
// activity (`blocks=N pruned=M`) and a footer line carries the
// statement's row-level work counters.
func (db *DB) ExplainAnalyze(sql string) (string, error) {
	return db.core.ExplainAnalyze(sql)
}

// QueryProgressive streams the Best-Matches-Only result of a preference
// query: yield is called with each row as soon as it is known to be
// maximal (progressive skyline), and may return false to stop early —
// the "first answers immediately" behaviour mobile search needs (§4.2).
// It returns the result column names.
func (db *DB) QueryProgressive(sql string, yield func(Row) bool) ([]string, error) {
	return db.core.QueryProgressive(sql, yield)
}

// QueryProgressiveContext is QueryProgressive with a cancellation context
// and bind arguments; cancelling ctx stops the remaining dominance work
// exactly like yield returning false.
func (db *DB) QueryProgressiveContext(ctx context.Context, sql string, yield func(Row) bool, args ...any) ([]string, error) {
	return db.core.QueryProgressiveContext(ctx, sql, yield, args...)
}

// Rows is a streaming result cursor over the operator pipeline, modelled
// on database/sql.Rows:
//
//	rows, err := db.QueryIter(sql)
//	defer rows.Close()
//	for rows.Next() {
//		use(rows.Row())
//	}
//	err = rows.Err()
type Rows struct {
	c *core.Cursor
}

// QueryIter plans a single SELECT (standard or Preference SQL) and returns
// a cursor that pulls rows through the Volcano-style operator pipeline:
// scans, filters and joins produce rows on demand, and preference queries
// stream their BMO set progressively when the preference is score-based.
// A consumer that stops early (TOP-k, first page) stops plain-SQL scans
// outright and, for preference queries, skips the remaining dominance
// comparisons (the candidate set itself must be read in full — dominance
// is a property of the whole set).
func (db *DB) QueryIter(sql string) (*Rows, error) {
	c, err := db.core.OpenCursor(sql)
	if err != nil {
		return nil, err
	}
	return &Rows{c: c}, nil
}

// QueryIterContext is QueryIter with a cancellation context and bind
// arguments: cancelling ctx stops the pipeline's scans mid-table, Next
// returns false and Err reports ctx's error.
func (db *DB) QueryIterContext(ctx context.Context, sql string, args ...any) (*Rows, error) {
	c, err := db.core.OpenCursorContext(ctx, sql, args...)
	if err != nil {
		return nil, err
	}
	return &Rows{c: c}, nil
}

// Stmt is a prepared statement over an embedded database: the script is
// parsed once (and a plain single SELECT planned once), then re-executed
// with fresh bind arguments — one plan serving every argument set.
type Stmt struct {
	sess *Session
	prep *core.Prepared
}

// Prepare parses a ';'-separated script once for repeated execution on
// the default session.
func (db *DB) Prepare(sql string) (*Stmt, error) {
	prep, err := db.core.Prepare(sql)
	if err != nil {
		return nil, err
	}
	return &Stmt{sess: db.core.DefaultSession(), prep: prep}, nil
}

// SQL returns the statement text.
func (s *Stmt) SQL() string { return s.prep.SQL }

// NumParams reports the statement's positional bind parameter count.
func (s *Stmt) NumParams() int { return s.prep.NumParams }

// Exec re-executes the statement with the given bind arguments.
func (s *Stmt) Exec(args ...any) (*Result, error) {
	return s.ExecContext(context.Background(), args...)
}

// ExecContext is Exec with a cancellation context.
func (s *Stmt) ExecContext(ctx context.Context, args ...any) (*Result, error) {
	vals, err := value.FromGoArgs(args)
	if err != nil {
		return nil, err
	}
	res, _, err := s.sess.ExecPreparedArgs(ctx, s.prep, vals)
	return res, err
}

// Columns returns the result column names.
func (r *Rows) Columns() []string { return r.c.Columns() }

// Next advances to the next row; false at the end of the result or on
// error (check Err).
func (r *Rows) Next() bool { return r.c.Next() }

// Row returns the current row; valid after Next returned true.
func (r *Rows) Row() Row { return r.c.Row() }

// Err returns the first error encountered while streaming.
func (r *Rows) Err() error { return r.c.Err() }

// Close releases the cursor's pipeline; safe to call more than once.
func (r *Rows) Close() error { return r.c.Close() }

// Subscription is a live continuous query: the result set frozen at
// registration (Initial) plus a bounded channel of incremental deltas
// maintained under DML; see DB.Subscribe and package internal/live.
type Subscription = live.Subscription

// Delta is one incremental change to a subscription's result set.
type Delta = live.Delta

// Delta operations.
const (
	// OpAdd: the row entered the live result set.
	OpAdd = live.OpAdd
	// OpRemove: the row left the live result set.
	OpRemove = live.OpRemove
)

// Subscribe registers a continuous query on the default session:
// `SUBSCRIBE SELECT ... FROM t [WHERE ...] [PREFERRING ...]` (the
// SUBSCRIBE keyword is optional in the statement text). The result set
// is maintained incrementally as writers commit — an insert enters the
// live skyline iff undominated, a deletion re-qualifies only the rows
// the leaver dominated — and every change streams on the subscription's
// channel as a +row/-row delta. Cancelling ctx closes the subscription.
// A consumer that falls a full queue behind is evicted
// (Err() == live.ErrSlowConsumer) rather than back-pressuring writers.
func (db *DB) Subscribe(ctx context.Context, sql string, args ...any) (*Subscription, error) {
	return db.core.DefaultSession().Subscribe(ctx, sql, args...)
}

// Internal exposes the underlying query processor for advanced embedding
// (benchmark harness, database/sql driver).
func (db *DB) Internal() *core.DB { return db.core }

// Format renders a result as an aligned text table.
func Format(res *Result) string { return core.FormatResult(res) }
