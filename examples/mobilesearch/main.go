// Mobilesearch plays through the paper's §4.2 m-commerce argument: on a
// WAP phone every retry and every scroll costs time and money, so the
// first query must deliver only the best results — and ideally start
// showing them before the full catalog is scanned. The example streams
// the BMO set progressively and stops after one screenful.
package main

import (
	"flag"
	"fmt"

	"repro"
	"repro/internal/datagen"
)

func main() {
	screen := flag.Int("screen", 4, "results fitting on the phone screen")
	flag.Parse()

	db := prefsql.Open()
	if err := datagen.Load(db.Internal().Engine(), "car", datagen.CarColumns(), datagen.Cars(2000, 11)); err != nil {
		panic(err)
	}

	// Location-based search: nearby dealer stock only (the WHERE clause),
	// wishes as soft constraints.
	query := `SELECT id, price, mileage FROM car
		WHERE category = 'roadster'
		PREFERRING LOWEST(price) AND LOWEST(mileage)`

	fmt.Printf("streaming the best roadsters (screen holds %d):\n\n", *screen)
	shown := 0
	cols, err := db.QueryProgressive(query, func(row prefsql.Row) bool {
		shown++
		fmt.Printf("  #%-4v %6v EUR  %6v km\n", row[0], row[1], row[2])
		return shown < *screen
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("\n(%d results shown, columns %v — no retyping, no scrolling)\n", shown, cols)

	// For contrast: the full BMO set size.
	full := db.MustExec(query)
	fmt.Printf("full Pareto-optimal set: %d offers\n", len(full.Rows))
}
