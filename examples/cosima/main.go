// Cosima demonstrates the §4.3 comparison-shopping pipeline: a meta-search
// over simulated e-shops whose intermediate results land in a temporary
// Preference SQL database; the shopper sees only the Pareto-optimal offers,
// explained by quality functions — the foundation of the COSIMA avatar's
// sales talk.
package main

import (
	"flag"
	"fmt"

	"repro/internal/cosima"
)

func main() {
	latency := flag.Float64("latency", 0.1, "shop latency scale (1.0 = realistic 300-900ms)")
	flag.Parse()

	shops := cosima.DefaultShops(4, 400, *latency, 7)
	fmt.Println("Participating shops:")
	for _, s := range shops {
		fmt.Printf("  %-10s catalog %d offers, access latency %v\n", s.Name, s.CatalogSize(), s.Latency)
	}

	m := &cosima.MetaSearcher{Shops: shops}
	fmt.Println("\nMeta-search: category 'book', preferring cheap AND well-rated AND fast delivery")
	res, st, err := m.Search("book", "")
	if err != nil {
		panic(err)
	}

	fmt.Printf("\ngathered %d offers in %v (shops queried concurrently)\n", st.Gathered, st.ShopTime)
	fmt.Printf("preference processing: %v — %d Pareto-optimal offers\n\n", st.PrefTime, st.ResultSize)

	fmt.Printf("%-10s %-10s %8s %7s %9s\n", "shop", "title", "price", "rating", "delivery")
	for _, row := range res.Rows {
		fmt.Printf("%-10s %-10s %8.2f %7s %9s\n",
			row[0].S, row[1].S, row[2].Num(), row[3].String(), row[4].String())
	}
	fmt.Println("\nEvery other offer is beaten on price, rating AND delivery by one of these.")
	fmt.Printf("Total meta-search time: %v (dominated by shop access, like the paper's 1-2s)\n", st.Total)
}
