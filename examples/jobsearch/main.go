// Jobsearch reproduces the §3.3 scenario interactively: a recruiter
// pre-selects candidates with hard criteria, then refines with a second
// selection — comparing the three strategies of the paper's benchmark
// (conjunctive SQL, disjunctive SQL, Pareto-accumulated Preference SQL).
package main

import (
	"flag"
	"fmt"

	"repro"
	"repro/internal/datagen"
)

func main() {
	rows := flag.Int("rows", 20000, "size of the job-profile relation")
	flag.Parse()

	db := prefsql.Open()
	if err := datagen.Load(db.Internal().Engine(), "jobs", datagen.JobColumns(), datagen.Jobs(*rows, 2002)); err != nil {
		panic(err)
	}
	fmt.Printf("Loaded %d synthetic job profiles (the paper used 1.4M real ones).\n\n", *rows)

	pre := "region = 'Bayern' AND salary < 40000"
	cnt := db.MustExec("SELECT COUNT(*) FROM jobs WHERE " + pre)
	fmt.Printf("Pre-selection %q -> %s candidates\n\n", pre, cnt.Rows[0][0])

	second := []string{
		"experience >= 10",
		"education IN ('master', 'phd')",
		"age <= 35",
		"mobility >= 100",
	}

	conj := fmt.Sprintf("SELECT COUNT(*) FROM jobs WHERE %s AND %s AND %s AND %s AND %s",
		pre, second[0], second[1], second[2], second[3])
	fmt.Println("SQL solution 1 — all four second-selection criteria conjunctive:")
	fmt.Printf("  result size %s (empty-result risk!)\n\n", db.MustExec(conj).Rows[0][0])

	disj := fmt.Sprintf("SELECT COUNT(*) FROM jobs WHERE %s AND (%s OR %s OR %s OR %s)",
		pre, second[0], second[1], second[2], second[3])
	fmt.Println("SQL solution 2 — the four criteria disjunctive:")
	fmt.Printf("  result size %s (flooding risk!)\n\n", db.MustExec(disj).Rows[0][0])

	pref := fmt.Sprintf(`SELECT id, experience, education, age, mobility FROM jobs
		WHERE %s PREFERRING %s AND %s AND %s AND %s ORDER BY id`,
		pre, second[0], second[1], second[2], second[3])
	fmt.Println("Preference SQL — the four criteria Pareto-accumulated soft constraints:")
	res := db.MustExec(pref)
	fmt.Print(prefsql.Format(res))
	fmt.Println("\nBest Matches Only: everyone in this set satisfies a maximal subset of wishes.")
}
