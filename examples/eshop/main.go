// Eshop builds the §4.1 personalized search engine: a washing-machine
// search mask whose fields are translated into a dynamic Preference SQL
// query (hard manufacturer constraint, Pareto groups cascaded by
// importance), optionally extended with a vendor preference on a hidden
// attribute — exactly the design-space the paper walks through.
package main

import (
	"fmt"

	"repro"
	"repro/internal/datagen"
)

// SearchMask is the user's form input from the §4.1 figure.
type SearchMask struct {
	Manufacturer string
	Width        int     // cm
	SpinSpeed    int     // rpm
	MaxPower     float64 // kWh
	PriceLow     int
	PriceHigh    int
}

// Query translates the mask into dynamic Preference SQL, mirroring the
// paper's generated query.
func (m SearchMask) Query() string {
	return fmt.Sprintf(`SELECT id, width, spinspeed, powerconsumption, waterconsumption, price
FROM products WHERE manufacturer = '%s'
PREFERRING (width AROUND %d AND spinspeed AROUND %d) CASCADE
(powerconsumption BETWEEN 0, %g AND LOWEST(waterconsumption) AND price BETWEEN %d, %d)`,
		m.Manufacturer, m.Width, m.SpinSpeed, m.MaxPower, m.PriceLow, m.PriceHigh)
}

func main() {
	db := prefsql.Open()
	if err := datagen.Load(db.Internal().Engine(), "products",
		datagen.ApplianceColumns(), datagen.Appliances(300, 2002)); err != nil {
		panic(err)
	}

	mask := SearchMask{
		Manufacturer: "Aturi",
		Width:        60,
		SpinSpeed:    1200,
		MaxPower:     0.9,
		PriceLow:     1500,
		PriceHigh:    2000,
	}
	fmt.Printf("Search mask: %+v\n\nGenerated Preference SQL:\n%s\n\n", mask, mask.Query())

	fmt.Println("Best matches only:")
	fmt.Print(prefsql.Format(db.MustExec(mask.Query())))

	// The e-merchant is free to add vendor preferences at his discretion,
	// e.g. silently prefer machines with low water consumption overall.
	vendor := mask.Query() + " CASCADE LOWEST(waterconsumption)"
	fmt.Println("\nWith an additional hidden vendor preference (LOWEST water consumption):")
	fmt.Print(prefsql.Format(db.MustExec(vendor)))

	// Contrast: the naive exact-match translation.
	hard := fmt.Sprintf(`SELECT id FROM products WHERE manufacturer = '%s'
		AND width = %d AND spinspeed = %d AND powerconsumption <= %g
		AND price BETWEEN %d AND %d`,
		mask.Manufacturer, mask.Width, mask.SpinSpeed, mask.MaxPower, mask.PriceLow, mask.PriceHigh)
	fmt.Println("\nThe exact-match SQL version of the same mask finds:")
	fmt.Print(prefsql.Format(db.MustExec(hard)))
}
