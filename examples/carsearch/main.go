// Carsearch runs the paper's flagship example (§2.2.2): the Opel wish
// expressed almost one-to-one in Preference SQL — a hard make condition,
// a Pareto group of category/price/power wishes, then color and mileage
// cascades — over a generated used-car catalog.
package main

import (
	"fmt"

	"repro"
	"repro/internal/datagen"
)

const opelQuery = `
SELECT id, category, price, power, color, mileage FROM car WHERE make = 'Opel'
PREFERRING (category = 'roadster' ELSE category <> 'passenger' AND
            price AROUND 40000 AND HIGHEST(power))
CASCADE color = 'red' CASCADE LOWEST(mileage)`

func main() {
	db := prefsql.Open()
	if err := datagen.Load(db.Internal().Engine(), "car", datagen.CarColumns(), datagen.Cars(500, 42)); err != nil {
		panic(err)
	}

	fmt.Println(`"My favorite car must be an Opel. It should be a roadster, but if`)
	fmt.Println(` there is none, please no passenger car. Equally important I want to`)
	fmt.Println(` spend around DM 40,000 and the car should be as powerful as possible.`)
	fmt.Println(` Less important I like a red one. If there remain several choices,`)
	fmt.Println(` let better mileage decide."`)
	fmt.Println()
	fmt.Println(opelQuery)
	fmt.Println()

	res := db.MustExec(opelQuery)
	fmt.Print(prefsql.Format(res))

	// The same search with hard constraints only — demonstrating why the
	// paper argues for soft constraints.
	hard := `SELECT id FROM car WHERE make = 'Opel' AND category = 'roadster'
		AND price = 40000 AND color = 'red'`
	fmt.Println("\nThe equivalent exact-match SQL query finds:")
	fmt.Print(prefsql.Format(db.MustExec(hard)))

	// Answer explanation: which criteria does the winner meet?
	fmt.Println("\nAnswer explanation with quality functions (§2.2.3):")
	fmt.Print(prefsql.Format(db.MustExec(`
		SELECT id, price, DISTANCE(price), TOP(category), LEVEL(category)
		FROM car WHERE make = 'Opel'
		PREFERRING category = 'roadster' ELSE category <> 'passenger'
		        AND price AROUND 40000`)))
}
