// Quickstart: the paper's introductory preference queries (§2.2.1) on a
// tiny travel database — soft constraints that never return an empty
// answer as long as any candidate exists.
package main

import (
	"fmt"

	"repro"
)

func main() {
	db := prefsql.Open()

	db.MustExec(`
		CREATE TABLE trips (id INT, destination VARCHAR, duration INT, price INT);
		INSERT INTO trips VALUES
			(1, 'Rome',     7, 900),
			(2, 'Lisbon',  13, 750),
			(3, 'Crete',   15, 820),
			(4, 'Iceland', 28, 2100)`)

	fmt.Println("All trips:")
	fmt.Print(prefsql.Format(db.MustExec(`SELECT * FROM trips`)))

	// An exact-match query for 14 days finds nothing...
	fmt.Println("\nHard SQL — WHERE duration = 14:")
	fmt.Print(prefsql.Format(db.MustExec(`SELECT * FROM trips WHERE duration = 14`)))

	// ...but the preference query returns the best available matches.
	fmt.Println("\nPreference SQL — PREFERRING duration AROUND 14:")
	fmt.Print(prefsql.Format(db.MustExec(
		`SELECT * FROM trips PREFERRING duration AROUND 14 ORDER BY id`)))

	// Pareto accumulation: duration and price equally important.
	fmt.Println("\nPREFERRING duration AROUND 14 AND LOWEST(price):")
	fmt.Print(prefsql.Format(db.MustExec(
		`SELECT *, DISTANCE(duration) FROM trips
		 PREFERRING duration AROUND 14 AND LOWEST(price) ORDER BY id`)))

	// The same query as the commercial middleware would ship it to a host
	// database: plain SQL92.
	script, err := db.ExplainRewrite(`SELECT * FROM trips PREFERRING duration AROUND 14`)
	if err != nil {
		panic(err)
	}
	fmt.Println("\nSQL92 rewriting of the AROUND query (§3.2):")
	fmt.Println(script)
}
