// Legacyapp demonstrates the paper's "plug-and-go application integration"
// (§3.1): an existing application written against database/sql gains
// Preference SQL without changing its data-access layer — the preference
// driver sits where the ODBC/JDBC driver used to.
package main

import (
	"database/sql"
	"fmt"
	"log"

	_ "repro/internal/driver"
)

func main() {
	db, err := sql.Open("prefsql", ":memory:")
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	db.SetMaxOpenConns(1) // one in-memory instance per connection pool

	// Plain SQL: passes through to the engine untouched.
	mustExec(db, `CREATE TABLE hotels (id INT, name VARCHAR, location VARCHAR, price INT)`)
	mustExec(db, `INSERT INTO hotels VALUES
		(1, 'Central Plaza', 'downtown', 180),
		(2, 'Airport Inn',   'airport',  95),
		(3, 'Garden Lodge',  'suburb',   110),
		(4, 'River View',    'suburb',   140)`)

	var n int
	if err := db.QueryRow(`SELECT COUNT(*) FROM hotels`).Scan(&n); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("catalog: %d hotels\n\n", n)

	// The preference query of §2.2.1, parameterized with standard
	// placeholders: prefer hotels outside downtown, then the cheapest.
	rows, err := db.Query(`SELECT name, location, price FROM hotels
		PREFERRING location <> ? CASCADE LOWEST(price)`, "downtown")
	if err != nil {
		log.Fatal(err)
	}
	defer rows.Close()

	fmt.Println("best matches (location <> 'downtown' CASCADE LOWEST(price)):")
	for rows.Next() {
		var name, location string
		var price int
		if err := rows.Scan(&name, &location, &price); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-14s %-9s %4d EUR\n", name, location, price)
	}
	if err := rows.Err(); err != nil {
		log.Fatal(err)
	}

	// If only downtown hotels had rooms left, the same query would offer
	// them rather than nothing — soft constraints never strand the user.
	mustExec(db, `DELETE FROM hotels WHERE location <> 'downtown'`)
	var name string
	if err := db.QueryRow(`SELECT name FROM hotels
		PREFERRING location <> 'downtown' CASCADE LOWEST(price)`).Scan(&name); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nafter the others sold out, still an offer: %s\n", name)
}

func mustExec(db *sql.DB, q string, args ...any) {
	if _, err := db.Exec(q, args...); err != nil {
		log.Fatal(err)
	}
}
