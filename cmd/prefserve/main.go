// Command prefserve runs the Preference SQL server: a TCP front end
// serving concurrent client sessions over one shared in-memory database,
// speaking the internal/wire protocol (see ARCHITECTURE.md for the
// message table).
//
// Usage:
//
//	prefserve                          # serve an empty database on :7654
//	prefserve -addr :6000 -f init.sql  # bulk-load a script, then serve
//	prefserve -cache 512 -v            # bigger statement cache, verbose
//	prefserve -metrics-addr :9090      # expose /metrics, /debug/vars, /debug/pprof
//	prefserve -slow-query-ms 250       # log statements at or above 250ms
//	prefserve -data-dir /var/lib/pref  # durable storage: WAL + heap files
//	prefserve -data-dir d -fsync off   # durable, but skip the per-commit fsync
//
// With -data-dir the server opens the durable backend (recovering from
// the write-ahead log if the previous process crashed), logs every
// mutation before applying it, and checkpoints on SIGINT/SIGTERM.
//
// A coordinator node for distributed preference SQL declares its shard
// topology with repeatable flags (every node runs this same binary):
//
//	prefserve -shard s0=host0:7654 -shard s1=host1:7654 \
//	          -shard-table jobs:id -f schema.sql
//
// Clients connect with the repro/client package or `prefsql -addr`.
package main

import (
	"flag"
	"fmt"
	"log"
	"log/slog"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/dist"
	"repro/internal/engine"
	"repro/internal/server"
	"repro/internal/storage/disk"
	"repro/internal/storage/wal"
)

// repeatedFlag collects every occurrence of a repeatable string flag.
type repeatedFlag []string

func (f *repeatedFlag) String() string { return strings.Join(*f, ",") }

func (f *repeatedFlag) Set(s string) error {
	*f = append(*f, s)
	return nil
}

func main() {
	var (
		addr        = flag.String("addr", ":7654", "listen address")
		file        = flag.String("f", "", "SQL script to execute before serving (schema + data)")
		cache       = flag.Int("cache", 128, "prepared-statement cache capacity")
		demo        = flag.String("demo", "", "pre-load a demo dataset: jobs[:N] (synthetic job relation)")
		verbose     = flag.Bool("v", false, "log connections")
		metricsAddr = flag.String("metrics-addr", "", "observability HTTP listener (/metrics, /debug/vars, /debug/pprof); empty = off")
		slowMs      = flag.Int64("slow-query-ms", 0, "log statements taking at least this many milliseconds; 0 = off")
		logJSON     = flag.Bool("log-json", false, "emit structured logs as JSON instead of text")
		idleTO      = flag.Duration("idle-timeout", 0, "disconnect a client silent this long with no statement in flight; 0 = off")
		writeTO     = flag.Duration("write-timeout", 0, "per-write socket deadline (disconnects peers that stop reading); 0 = off")
		dialTO      = flag.Duration("dial-timeout", 5*time.Second, "connect+handshake deadline per shard; 0 = off")
		dataDir     = flag.String("data-dir", "", "durable storage directory (WAL + heap files); empty = in-memory")
		fsyncMode   = flag.String("fsync", "always", "WAL durability with -data-dir: always (fsync per group commit) or off")

		shardFlags repeatedFlag
		tableFlags repeatedFlag
	)
	flag.Var(&shardFlags, "shard", "shard node as name=addr or addr (repeatable, in shard order); makes this node a coordinator")
	flag.Var(&tableFlags, "shard-table", "hash-partitioned table as table:hashcol (repeatable)")
	flag.Parse()

	// Structured logging: connection lifecycle at Info (behind -v) and
	// slow queries at Warn (always, when a threshold is set). Built
	// before the database so recovery can report through it.
	level := slog.LevelWarn
	if *verbose {
		level = slog.LevelInfo
	}
	var handler slog.Handler
	if *logJSON {
		handler = slog.NewJSONHandler(os.Stderr, &slog.HandlerOptions{Level: level})
	} else {
		handler = slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level})
	}
	logger := slog.New(handler)

	var db *core.DB
	var backend *disk.DB
	if *dataDir != "" {
		mode, err := wal.ParseSyncMode(*fsyncMode)
		if err != nil {
			fmt.Fprintf(os.Stderr, "prefserve: %v\n", err)
			os.Exit(1)
		}
		d, stats, err := disk.Open(*dataDir, disk.Options{Sync: mode})
		if err != nil {
			fmt.Fprintf(os.Stderr, "prefserve: open %s: %v\n", *dataDir, err)
			os.Exit(1)
		}
		backend = d
		db = core.OpenOn(engine.NewOn(d.Catalog()))
		recLog := logger.Info
		if stats.TornBytes > 0 {
			// A torn WAL tail means the previous process died mid-write;
			// that is worth seeing without -v.
			recLog = logger.Warn
		}
		recLog("recovered durable database",
			"dir", *dataDir, "fsync", mode.String(), "gen", stats.Gen,
			"tables", stats.Tables, "heap_rows", stats.HeapRows,
			"wal_records", stats.WalRecords, "wal_bytes", stats.WalBytes,
			"torn_bytes", stats.TornBytes, "elapsed", stats.Elapsed)
		log.Printf("prefserve: durable storage in %s (fsync=%s, generation %d, %d tables, %d rows recovered)",
			*dataDir, mode, stats.Gen, stats.Tables, stats.HeapRows+stats.WalRecords)
	} else {
		db = core.Open()
	}
	if len(shardFlags) > 0 || len(tableFlags) > 0 {
		coord, err := buildCoordinator(shardFlags, tableFlags, *dialTO)
		if err != nil {
			fmt.Fprintf(os.Stderr, "prefserve: %v\n", err)
			os.Exit(1)
		}
		db.SetDistributor(coord)
	}
	if *demo != "" {
		if err := loadDemo(db, *demo); err != nil {
			fmt.Fprintf(os.Stderr, "prefserve: %v\n", err)
			os.Exit(1)
		}
	}
	if *file != "" {
		data, err := os.ReadFile(*file)
		if err != nil {
			fmt.Fprintf(os.Stderr, "prefserve: %v\n", err)
			os.Exit(1)
		}
		if _, err := db.Exec(string(data)); err != nil {
			fmt.Fprintf(os.Stderr, "prefserve: init script: %v\n", err)
			os.Exit(1)
		}
	}

	opts := server.Options{
		CacheSize:    *cache,
		Banner:       "prefserve",
		Logger:       logger,
		SlowQueryMs:  *slowMs,
		IdleTimeout:  *idleTO,
		WriteTimeout: *writeTO,
	}
	srv := server.New(db, opts)
	if *metricsAddr != "" {
		_, maddr, err := server.ServeMetrics(*metricsAddr)
		if err != nil {
			log.Fatalf("prefserve: metrics listener: %v", err)
		}
		log.Printf("prefserve: metrics on http://%s/metrics (pprof under /debug/pprof/)", maddr)
	}
	// SIGINT/SIGTERM drain the server, then checkpoint and close the
	// durable backend so the next start recovers from a clean image
	// with an empty WAL tail.
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	go func() {
		sig := <-sigCh
		logger.Info("shutting down", "signal", sig.String())
		srv.Close()
	}()

	log.Printf("prefserve: listening on %s (statement cache %d)", *addr, *cache)
	if err := srv.ListenAndServe(*addr); err != nil {
		log.Fatalf("prefserve: %v", err)
	}
	if backend != nil {
		// The quiesced close: the statement write lock excludes any
		// stragglers while the final checkpoint runs.
		if err := db.Checkpoint(core.CheckpointerFunc(backend.Close)); err != nil {
			log.Fatalf("prefserve: shutdown checkpoint: %v", err)
		}
		st := backend.WalStats()
		logger.Info("checkpointed on shutdown",
			"gen", backend.Generation(), "wal_appends", st.Appends,
			"wal_batches", st.Batches, "max_batch", st.MaxBatch)
		log.Printf("prefserve: checkpointed %s at generation %d", *dataDir, backend.Generation())
	}
}

// buildCoordinator validates the shard topology flags and builds the
// distributor this node injects into core. Declaring shards without
// sharded tables (or vice versa) is a configuration mistake.
func buildCoordinator(shardFlags, tableFlags []string, dialTimeout time.Duration) (*dist.Coordinator, error) {
	if len(shardFlags) == 0 {
		return nil, fmt.Errorf("-shard-table requires at least one -shard node")
	}
	if len(tableFlags) == 0 {
		return nil, fmt.Errorf("-shard requires at least one -shard-table declaration")
	}
	shards := make([]dist.Shard, 0, len(shardFlags))
	for _, s := range shardFlags {
		sh, err := dist.ParseShard(s)
		if err != nil {
			return nil, err
		}
		shards = append(shards, sh)
	}
	tables := make(map[string]string, len(tableFlags))
	for _, t := range tableFlags {
		table, hashCol, err := dist.ParseTable(t)
		if err != nil {
			return nil, err
		}
		tables[table] = hashCol
	}
	return dist.NewCoordinator(shards, tables, dialTimeout), nil
}

// loadDemo pre-loads a named synthetic dataset, so a server with data to
// query is one flag away.
func loadDemo(db *core.DB, spec string) error {
	name, rows := spec, 0
	if _, err := fmt.Sscanf(spec, "jobs:%d", &rows); err == nil {
		name = "jobs"
	}
	switch name {
	case "jobs":
		if rows <= 0 {
			rows = bench.DefaultConfig().JobRows
		}
		if err := datagen.Load(db.Engine(), "jobs", datagen.JobColumns(), datagen.Jobs(rows, 2002)); err != nil {
			return err
		}
		_, err := db.Exec("CREATE INDEX idx_jobs_region ON jobs (region)")
		return err
	}
	return fmt.Errorf("unknown demo dataset %q", spec)
}
