// Command prefserve runs the Preference SQL server: a TCP front end
// serving concurrent client sessions over one shared in-memory database,
// speaking the internal/wire protocol (see ARCHITECTURE.md for the
// message table).
//
// Usage:
//
//	prefserve                          # serve an empty database on :7654
//	prefserve -addr :6000 -f init.sql  # bulk-load a script, then serve
//	prefserve -cache 512 -v            # bigger statement cache, verbose
//	prefserve -metrics-addr :9090      # expose /metrics, /debug/vars, /debug/pprof
//	prefserve -slow-query-ms 250       # log statements at or above 250ms
//
// Clients connect with the repro/client package or `prefsql -addr`.
package main

import (
	"flag"
	"fmt"
	"log"
	"log/slog"
	"os"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/server"
)

func main() {
	var (
		addr        = flag.String("addr", ":7654", "listen address")
		file        = flag.String("f", "", "SQL script to execute before serving (schema + data)")
		cache       = flag.Int("cache", 128, "prepared-statement cache capacity")
		demo        = flag.String("demo", "", "pre-load a demo dataset: jobs[:N] (synthetic job relation)")
		verbose     = flag.Bool("v", false, "log connections")
		metricsAddr = flag.String("metrics-addr", "", "observability HTTP listener (/metrics, /debug/vars, /debug/pprof); empty = off")
		slowMs      = flag.Int64("slow-query-ms", 0, "log statements taking at least this many milliseconds; 0 = off")
		logJSON     = flag.Bool("log-json", false, "emit structured logs as JSON instead of text")
	)
	flag.Parse()

	db := core.Open()
	if *demo != "" {
		if err := loadDemo(db, *demo); err != nil {
			fmt.Fprintf(os.Stderr, "prefserve: %v\n", err)
			os.Exit(1)
		}
	}
	if *file != "" {
		data, err := os.ReadFile(*file)
		if err != nil {
			fmt.Fprintf(os.Stderr, "prefserve: %v\n", err)
			os.Exit(1)
		}
		if _, err := db.Exec(string(data)); err != nil {
			fmt.Fprintf(os.Stderr, "prefserve: init script: %v\n", err)
			os.Exit(1)
		}
	}

	// Structured logging: connection lifecycle at Info (behind -v) and
	// slow queries at Warn (always, when a threshold is set).
	level := slog.LevelWarn
	if *verbose {
		level = slog.LevelInfo
	}
	var handler slog.Handler
	if *logJSON {
		handler = slog.NewJSONHandler(os.Stderr, &slog.HandlerOptions{Level: level})
	} else {
		handler = slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level})
	}
	logger := slog.New(handler)

	opts := server.Options{
		CacheSize:   *cache,
		Banner:      "prefserve",
		Logger:      logger,
		SlowQueryMs: *slowMs,
	}
	srv := server.New(db, opts)
	if *metricsAddr != "" {
		_, maddr, err := server.ServeMetrics(*metricsAddr)
		if err != nil {
			log.Fatalf("prefserve: metrics listener: %v", err)
		}
		log.Printf("prefserve: metrics on http://%s/metrics (pprof under /debug/pprof/)", maddr)
	}
	log.Printf("prefserve: listening on %s (statement cache %d)", *addr, *cache)
	if err := srv.ListenAndServe(*addr); err != nil {
		log.Fatalf("prefserve: %v", err)
	}
}

// loadDemo pre-loads a named synthetic dataset, so a server with data to
// query is one flag away.
func loadDemo(db *core.DB, spec string) error {
	name, rows := spec, 0
	if _, err := fmt.Sscanf(spec, "jobs:%d", &rows); err == nil {
		name = "jobs"
	}
	switch name {
	case "jobs":
		if rows <= 0 {
			rows = bench.DefaultConfig().JobRows
		}
		if err := datagen.Load(db.Engine(), "jobs", datagen.JobColumns(), datagen.Jobs(rows, 2002)); err != nil {
			return err
		}
		_, err := db.Exec("CREATE INDEX idx_jobs_region ON jobs (region)")
		return err
	}
	return fmt.Errorf("unknown demo dataset %q", spec)
}
