package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro"
)

func TestRunStatement(t *testing.T) {
	db := prefsql.Open()
	if err := runStatement(db, "CREATE TABLE t (a INT); INSERT INTO t VALUES (1);", true); err != nil {
		t.Fatal(err)
	}
	if err := runStatement(db, "SELECT * FROM t;", false); err != nil {
		t.Fatal(err)
	}
	if err := runStatement(db, "SELEKT;", false); err == nil {
		t.Error("bad SQL should error")
	}
}

func TestMetaCommands(t *testing.T) {
	db := prefsql.Open()
	db.MustExec("CREATE TABLE t (a INT)")
	db.MustExec("CREATE VIEW v AS SELECT * FROM t")
	db.MustExec("CREATE PREFERENCE fav AS LOWEST(a)")

	if command(db, "\\q") != true {
		t.Error("\\q should quit")
	}
	for _, cmd := range []string{
		"\\tables",
		"\\prefs",
		"\\mode rewrite",
		"\\mode native",
		"\\mode bogus",
		"\\algo bnl",
		"\\algo bogus",
		"\\explain SELECT * FROM t PREFERRING LOWEST(a)",
		"\\explain SELECT * FROM t", // error path: not a preference query
		"\\unknowncommand",
	} {
		if command(db, cmd) {
			t.Errorf("%s should not quit", cmd)
		}
	}
}

func TestScriptFileFlow(t *testing.T) {
	dir := t.TempDir()
	script := filepath.Join(dir, "setup.sql")
	content := `CREATE TABLE trips (id INT, duration INT);
INSERT INTO trips VALUES (1, 7), (2, 13);
SELECT id FROM trips PREFERRING duration AROUND 14;`
	if err := os.WriteFile(script, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	db := prefsql.Open()
	data, err := os.ReadFile(script)
	if err != nil {
		t.Fatal(err)
	}
	if err := runStatement(db, string(data), false); err != nil {
		t.Fatalf("script: %v", err)
	}
}
