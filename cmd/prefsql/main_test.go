package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro"
	"repro/client"
	"repro/internal/server"
)

func TestRunStatement(t *testing.T) {
	db := embeddedBackend{db: prefsql.Open()}
	if err := runStatement(db, "CREATE TABLE t (a INT); INSERT INTO t VALUES (1);", true); err != nil {
		t.Fatal(err)
	}
	if err := runStatement(db, "SELECT * FROM t;", false); err != nil {
		t.Fatal(err)
	}
	if err := runStatement(db, "SELEKT;", false); err == nil {
		t.Error("bad SQL should error")
	}
}

func TestMetaCommands(t *testing.T) {
	edb := prefsql.Open()
	db := embeddedBackend{db: edb}
	edb.MustExec("CREATE TABLE t (a INT)")
	edb.MustExec("CREATE VIEW v AS SELECT * FROM t")
	edb.MustExec("CREATE PREFERENCE fav AS LOWEST(a)")

	if command(db, "\\q") != true {
		t.Error("\\q should quit")
	}
	for _, cmd := range []string{
		"\\tables",
		"\\prefs",
		"\\mode rewrite",
		"\\mode native",
		"\\mode bogus",
		"\\algo bnl",
		"\\algo bogus",
		"\\explain SELECT * FROM t PREFERRING LOWEST(a)",
		"\\explain SELECT * FROM t", // error path: not a preference query
		"\\unknowncommand",
	} {
		if command(db, cmd) {
			t.Errorf("%s should not quit", cmd)
		}
	}
}

func TestScriptFileFlow(t *testing.T) {
	dir := t.TempDir()
	script := filepath.Join(dir, "setup.sql")
	content := `CREATE TABLE trips (id INT, duration INT);
INSERT INTO trips VALUES (1, 7), (2, 13);
SELECT id FROM trips PREFERRING duration AROUND 14;`
	if err := os.WriteFile(script, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	db := embeddedBackend{db: prefsql.Open()}
	data, err := os.ReadFile(script)
	if err != nil {
		t.Fatal(err)
	}
	if err := runStatement(db, string(data), false); err != nil {
		t.Fatalf("script: %v", err)
	}
}

func TestRemoteBackend(t *testing.T) {
	edb := prefsql.Open()
	srv := server.New(edb.Internal(), server.Options{})
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	conn, err := client.Dial(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	db := remoteBackend{c: conn}
	defer db.close()

	if err := runStatement(db, "CREATE TABLE t (a INT); INSERT INTO t VALUES (1), (2);", false); err != nil {
		t.Fatal(err)
	}
	if err := runStatement(db, "SELECT a FROM t PREFERRING LOWEST(a);", false); err != nil {
		t.Fatal(err)
	}
	if err := runStatement(db, "SELEKT;", false); err == nil {
		t.Error("bad SQL should error remotely too")
	}
	for _, cmd := range []string{
		"\\mode rewrite", "\\mode native", "\\algo bnl",
		"\\tables", // unsupported remotely: prints an error, keeps running
		"\\explain SELECT * FROM t PREFERRING LOWEST(a)", // ditto
	} {
		if command(db, cmd) {
			t.Errorf("%s should not quit", cmd)
		}
	}
}
