// Command prefsql is an interactive shell and script runner for
// Preference SQL, over an embedded in-memory database or — with -addr —
// a remote prefserve instance.
//
// Usage:
//
//	prefsql                 # interactive shell on an empty embedded database
//	prefsql -f script.sql   # run a script, then exit
//	prefsql -f setup.sql -i # run a script, then drop into the shell
//	prefsql -addr :7654     # shell against a running prefserve
//
// Shell commands besides SQL statements (terminated by ';'):
//
//	\explain SELECT ...   show the SQL92 rewriting of a preference query
//	\plan SELECT ...      show the native operator plan (BMO algorithm,
//	                      parallelism hint, worker cap)
//	\mode native|rewrite  switch the execution strategy (per session)
//	\algo auto|nl|bnl|sfs|bestlevel|parallel  select the native BMO algorithm
//	                      (per session; `SET algorithm = ...` works as SQL too)
//	\tables               list tables and views
//	\prefs                list named preferences (CREATE PREFERENCE ...)
//	\stats                show engine metrics and the last statement's
//	                      execution statistics (per-operator plan included);
//	                      over -addr, the server-reported statistics;
//	                      embedded, also each active subscription's counters
//	\watch SELECT ...     subscribe to a continuous query: print the result
//	                      set, then stream +/- deltas as writers change it
//	                      (incremental skyline maintenance); Enter stops
//	\q                    quit
//
// Session settings are also plain SQL statements, embedded or remote:
// `SET mode = rewrite`, `SET algorithm = parallel`, `SET workers = 4`.
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	prefsql "repro"
	"repro/client"
	"repro/internal/bmo"
	"repro/internal/metrics"
)

// backend abstracts the embedded database and a remote server
// connection behind the shell's commands.
type backend interface {
	exec(sql string) (*prefsql.Result, error)
	// watch registers a continuous query; the stream ends when ctx is
	// cancelled (see \watch in repl).
	watch(ctx context.Context, sql string) (watchStream, error)
	setMode(m prefsql.Mode) error
	setAlgo(a prefsql.Algorithm) error
	explain(sql string) (string, error)
	plan(sql string) (string, error)
	tables() ([]string, error)
	prefs() ([]string, error)
	stats() (string, error)
	close()
}

// watchStream normalizes the embedded and remote subscription APIs for
// the \watch loop: next blocks for one delta and reports false when the
// stream ended (err distinguishes a clean stop from a failure).
type watchStream interface {
	columns() []string
	initial() []prefsql.Row
	next() (add bool, row prefsql.Row, ok bool)
	err() error
}

type embeddedBackend struct{ db *prefsql.DB }

type embeddedWatch struct{ sub *prefsql.Subscription }

func (w embeddedWatch) columns() []string      { return w.sub.Columns() }
func (w embeddedWatch) initial() []prefsql.Row { return w.sub.Initial() }
func (w embeddedWatch) err() error             { return w.sub.Err() }
func (w embeddedWatch) next() (bool, prefsql.Row, bool) {
	d, ok := <-w.sub.C()
	return d.Op == prefsql.OpAdd, d.Row, ok
}

func (b embeddedBackend) watch(ctx context.Context, sql string) (watchStream, error) {
	sub, err := b.db.Subscribe(ctx, sql)
	if err != nil {
		return nil, err
	}
	return embeddedWatch{sub: sub}, nil
}

func (b embeddedBackend) exec(sql string) (*prefsql.Result, error) { return b.db.Exec(sql) }
func (b embeddedBackend) setMode(m prefsql.Mode) error             { b.db.SetMode(m); return nil }
func (b embeddedBackend) setAlgo(a prefsql.Algorithm) error        { b.db.SetAlgorithm(a); return nil }
func (b embeddedBackend) explain(sql string) (string, error)       { return b.db.ExplainRewrite(sql) }
func (b embeddedBackend) plan(sql string) (string, error)          { return b.db.ExplainNative(sql) }
func (b embeddedBackend) close()                                   {}

func (b embeddedBackend) tables() ([]string, error) {
	cat := b.db.Internal().Engine().Catalog()
	var out []string
	for _, name := range cat.TableNames() {
		tbl, _ := cat.Table(name)
		out = append(out, fmt.Sprintf("table %s (%d rows)", name, tbl.RowCount()))
	}
	for _, name := range cat.ViewNames() {
		out = append(out, "view  "+name)
	}
	return out, nil
}

func (b embeddedBackend) prefs() ([]string, error) {
	var out []string
	for _, name := range b.db.Internal().PreferenceNames() {
		out = append(out, "preference "+name)
	}
	return out, nil
}

func (b embeddedBackend) stats() (string, error) {
	var sb strings.Builder
	sb.WriteString("-- engine metrics --\n")
	for _, s := range metrics.Default.Snapshot() {
		series := s.Name
		if s.Labels != "" {
			series += "{" + s.Labels + "}"
		}
		if s.Type == "histogram" {
			fmt.Fprintf(&sb, "%-48s count=%d sum=%.3fs p50=%.3fms p95=%.3fms p99=%.3fms\n",
				series, s.Count, s.Sum,
				s.Quants["p50"]*1000, s.Quants["p95"]*1000, s.Quants["p99"]*1000)
			continue
		}
		fmt.Fprintf(&sb, "%-48s %d\n", series, s.Value)
	}
	if subs := b.db.Internal().Live().Active(); len(subs) > 0 {
		sb.WriteString("\n-- active subscriptions --\n")
		for _, sub := range subs {
			st := sub.Stats()
			fmt.Fprintf(&sb, "#%d %s\n", st.ID, st.SQL)
			fmt.Fprintf(&sb, "   skyline=%d shadow=%d seq=%d adds=%d removes=%d changes=%d compares=%d requalified=%d queue=%d/%d\n",
				st.Skyline, st.Shadow, st.LastSeq, st.Adds, st.Removes,
				st.Changes, st.Compares, st.Requalified, st.Queued, st.QueueCap)
		}
	}
	if st := b.db.Internal().DefaultSession().LastStats(); st != nil {
		fmt.Fprintf(&sb, "\n-- last statement (%s, %v, %d rows) --\n%s\n",
			st.Kind, st.Duration.Round(time.Microsecond), st.Rows, strings.TrimSpace(st.SQL))
		if st.Plan != "" {
			sb.WriteString(st.Plan)
		}
	}
	return sb.String(), nil
}

type remoteBackend struct{ c *client.Conn }

type remoteWatch struct{ sub *client.Sub }

func (w remoteWatch) columns() []string      { return w.sub.Columns() }
func (w remoteWatch) initial() []prefsql.Row { return w.sub.Initial() }
func (w remoteWatch) next() (bool, prefsql.Row, bool) {
	if !w.sub.Next() {
		return false, nil, false
	}
	d := w.sub.Delta()
	return d.Op == client.DeltaAdd, d.Row, true
}

func (w remoteWatch) err() error {
	// Cancelling \watch's context is the intended way to stop.
	if err := w.sub.Err(); err != nil && !errors.Is(err, context.Canceled) {
		return err
	}
	return nil
}

func (b remoteBackend) watch(ctx context.Context, sql string) (watchStream, error) {
	sub, err := b.c.Subscribe(ctx, sql)
	if err != nil {
		return nil, err
	}
	return remoteWatch{sub: sub}, nil
}

func (b remoteBackend) exec(sql string) (*prefsql.Result, error) { return b.c.Exec(sql) }
func (b remoteBackend) setMode(m prefsql.Mode) error             { return b.c.SetMode(m) }
func (b remoteBackend) setAlgo(a prefsql.Algorithm) error        { return b.c.SetAlgorithm(a) }
func (b remoteBackend) close()                                   { b.c.Close() }

func (b remoteBackend) explain(sql string) (string, error) {
	return b.c.Explain(client.ExplainRewrite, sql)
}
func (b remoteBackend) plan(sql string) (string, error) {
	return b.c.Explain(client.ExplainPlan, sql)
}
func (b remoteBackend) tables() ([]string, error) {
	return nil, fmt.Errorf("\\tables is not supported over -addr")
}
func (b remoteBackend) prefs() ([]string, error) {
	return nil, fmt.Errorf("\\prefs is not supported over -addr")
}

func (b remoteBackend) stats() (string, error) {
	st := b.c.LastStats()
	if st == nil {
		return "", fmt.Errorf("no statistics yet — run a query first")
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "-- last statement (server-reported) --\n")
	fmt.Fprintf(&sb, "duration    %v\n", time.Duration(st.Nanos).Round(time.Microsecond))
	fmt.Fprintf(&sb, "rows        %d\n", st.Rows)
	fmt.Fprintf(&sb, "scanned     %d\n", st.RowsScanned)
	fmt.Fprintf(&sb, "probes      %d\n", st.IndexProbes)
	fmt.Fprintf(&sb, "join_in     %d\n", st.JoinInputRows)
	fmt.Fprintf(&sb, "bmo_in      %d\n", st.BMOInputRows)
	fmt.Fprintf(&sb, "bmo_out     %d\n", st.BMOOutputRows)
	if st.VecBlocksScanned > 0 {
		fmt.Fprintf(&sb, "vec_blocks  %d (pruned %d)\n", st.VecBlocksScanned, st.VecBlocksPruned)
	}
	if st.Plan != "" {
		sb.WriteString(st.Plan)
	}
	return sb.String(), nil
}

func main() {
	var (
		file        = flag.String("f", "", "SQL script to execute")
		interactive = flag.Bool("i", false, "enter the shell after -f")
		timing      = flag.Bool("timing", false, "print execution time per statement")
		addr        = flag.String("addr", "", "connect to a prefserve instance instead of embedding")
	)
	flag.Parse()

	var db backend
	if *addr != "" {
		conn, err := client.Dial(*addr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "prefsql: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("connected to %s (%s, session %d)\n", *addr, conn.Banner(), conn.SessionID())
		// Ask the server for per-statement statistics so \stats has
		// something to show.
		conn.RequestStats(true)
		db = remoteBackend{c: conn}
	} else {
		edb := prefsql.Open()
		// Record per-operator statistics so \stats can show the last
		// statement's annotated plan (interactive use; the overhead is
		// irrelevant at shell speed).
		edb.Internal().DefaultSession().SetRecordNodeStats(true)
		db = embeddedBackend{db: edb}
	}
	defer db.close()

	if *file != "" {
		data, err := os.ReadFile(*file)
		if err != nil {
			fmt.Fprintf(os.Stderr, "prefsql: %v\n", err)
			os.Exit(1)
		}
		if err := runStatement(db, string(data), *timing); err != nil {
			fmt.Fprintf(os.Stderr, "prefsql: %v\n", err)
			os.Exit(1)
		}
		if !*interactive {
			return
		}
	}
	repl(db, *timing)
}

func repl(db backend, timing bool) {
	fmt.Println("Preference SQL shell — end statements with ';', \\q to quit")
	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	prompt := "prefsql> "
	for {
		fmt.Print(prompt)
		if !scanner.Scan() {
			fmt.Println()
			return
		}
		line := scanner.Text()
		trimmed := strings.TrimSpace(line)
		if buf.Len() == 0 && strings.HasPrefix(trimmed, "\\") {
			// \watch needs the scanner (Enter stops the stream), so it is
			// handled here rather than in command.
			if strings.HasPrefix(trimmed, "\\watch") {
				arg := strings.TrimSpace(strings.TrimPrefix(trimmed, "\\watch"))
				runWatch(db, arg, scanner)
				continue
			}
			if done := command(db, trimmed); done {
				return
			}
			continue
		}
		buf.WriteString(line)
		buf.WriteByte('\n')
		if strings.HasSuffix(trimmed, ";") {
			stmt := buf.String()
			buf.Reset()
			prompt = "prefsql> "
			if err := runStatement(db, stmt, timing); err != nil {
				fmt.Fprintf(os.Stderr, "error: %v\n", err)
			}
			continue
		}
		if buf.Len() > 0 {
			prompt = "    ...> "
		}
	}
}

// runWatch subscribes to a continuous query and streams its deltas to
// the terminal — the initial result set first, then one '+'/'-' line per
// change as writers commit — until the user presses Enter.
func runWatch(db backend, sql string, scanner *bufio.Scanner) {
	if strings.TrimSuffix(sql, ";") == "" {
		fmt.Fprintln(os.Stderr, "usage: \\watch SELECT ... [PREFERRING ...]")
		return
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	w, err := db.watch(ctx, strings.TrimSuffix(sql, ";"))
	if err != nil {
		fmt.Fprintf(os.Stderr, "error: %v\n", err)
		return
	}
	fmt.Printf("watching (%s) — press Enter to stop\n", strings.Join(w.columns(), ", "))
	for _, row := range w.initial() {
		fmt.Printf("  %s\n", formatRow(row))
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			add, row, ok := w.next()
			if !ok {
				return
			}
			sign := "-"
			if add {
				sign = "+"
			}
			fmt.Printf("%s %s\n", sign, formatRow(row))
		}
	}()
	// Enter (or EOF) stops the watch: cancel ends the subscription, the
	// delta printer drains to the stream's end and exits.
	scanner.Scan()
	cancel()
	<-done
	if err := w.err(); err != nil {
		fmt.Fprintf(os.Stderr, "watch ended: %v\n", err)
	}
}

func formatRow(row prefsql.Row) string {
	parts := make([]string, len(row))
	for i, v := range row {
		parts[i] = v.String()
	}
	return strings.Join(parts, " | ")
}

// command handles backslash meta-commands; it reports whether to quit.
func command(db backend, line string) bool {
	parts := strings.SplitN(line, " ", 2)
	arg := ""
	if len(parts) == 2 {
		arg = strings.TrimSpace(parts[1])
	}
	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "error: %v\n", err)
	}
	switch parts[0] {
	case "\\q", "\\quit", "\\exit":
		return true
	case "\\explain":
		script, err := db.explain(strings.TrimSuffix(arg, ";"))
		if err != nil {
			fail(err)
			return false
		}
		fmt.Println(script)
	case "\\plan":
		out, err := db.plan(strings.TrimSuffix(arg, ";"))
		if err != nil {
			fail(err)
			return false
		}
		fmt.Print(out)
	case "\\mode":
		switch arg {
		case "native":
			if err := db.setMode(prefsql.ModeNative); err != nil {
				fail(err)
			}
		case "rewrite":
			if err := db.setMode(prefsql.ModeRewrite); err != nil {
				fail(err)
			}
		default:
			fmt.Fprintln(os.Stderr, "usage: \\mode native|rewrite")
		}
	case "\\algo":
		a, ok := bmo.ParseToken(arg)
		if !ok {
			fmt.Fprintln(os.Stderr, "usage: \\algo auto|nl|bnl|sfs|bestlevel|parallel")
			break
		}
		if err := db.setAlgo(a); err != nil {
			fail(err)
		}
	case "\\prefs":
		lines, err := db.prefs()
		if err != nil {
			fail(err)
			break
		}
		for _, l := range lines {
			fmt.Println(l)
		}
	case "\\tables":
		lines, err := db.tables()
		if err != nil {
			fail(err)
			break
		}
		for _, l := range lines {
			fmt.Println(l)
		}
	case "\\stats":
		out, err := db.stats()
		if err != nil {
			fail(err)
			break
		}
		fmt.Print(out)
	default:
		fmt.Fprintf(os.Stderr, "unknown command %s\n", parts[0])
	}
	return false
}

func runStatement(db backend, sql string, timing bool) error {
	start := time.Now()
	res, err := db.exec(sql)
	if err != nil {
		return err
	}
	fmt.Print(prefsql.Format(res))
	if timing {
		fmt.Printf("(%v)\n", time.Since(start).Round(time.Microsecond))
	}
	return nil
}
