// Command prefsql is an interactive shell and script runner for
// Preference SQL.
//
// Usage:
//
//	prefsql                 # interactive shell on an empty database
//	prefsql -f script.sql   # run a script, then exit
//	prefsql -f setup.sql -i # run a script, then drop into the shell
//
// Shell commands besides SQL statements (terminated by ';'):
//
//	\explain SELECT ...   show the SQL92 rewriting of a preference query
//	\mode native|rewrite  switch the execution strategy
//	\algo auto|nl|bnl|sfs select the native BMO algorithm
//	\tables               list tables and views
//	\prefs                list named preferences (CREATE PREFERENCE ...)
//	\q                    quit
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro"
	"repro/internal/bmo"
)

func main() {
	var (
		file        = flag.String("f", "", "SQL script to execute")
		interactive = flag.Bool("i", false, "enter the shell after -f")
		timing      = flag.Bool("timing", false, "print execution time per statement")
	)
	flag.Parse()

	db := prefsql.Open()
	if *file != "" {
		data, err := os.ReadFile(*file)
		if err != nil {
			fmt.Fprintf(os.Stderr, "prefsql: %v\n", err)
			os.Exit(1)
		}
		if err := runStatement(db, string(data), *timing); err != nil {
			fmt.Fprintf(os.Stderr, "prefsql: %v\n", err)
			os.Exit(1)
		}
		if !*interactive {
			return
		}
	}
	repl(db, *timing)
}

func repl(db *prefsql.DB, timing bool) {
	fmt.Println("Preference SQL shell — end statements with ';', \\q to quit")
	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	prompt := "prefsql> "
	for {
		fmt.Print(prompt)
		if !scanner.Scan() {
			fmt.Println()
			return
		}
		line := scanner.Text()
		trimmed := strings.TrimSpace(line)
		if buf.Len() == 0 && strings.HasPrefix(trimmed, "\\") {
			if done := command(db, trimmed); done {
				return
			}
			continue
		}
		buf.WriteString(line)
		buf.WriteByte('\n')
		if strings.HasSuffix(trimmed, ";") {
			stmt := buf.String()
			buf.Reset()
			prompt = "prefsql> "
			if err := runStatement(db, stmt, timing); err != nil {
				fmt.Fprintf(os.Stderr, "error: %v\n", err)
			}
			continue
		}
		if buf.Len() > 0 {
			prompt = "    ...> "
		}
	}
}

// command handles backslash meta-commands; it reports whether to quit.
func command(db *prefsql.DB, line string) bool {
	parts := strings.SplitN(line, " ", 2)
	arg := ""
	if len(parts) == 2 {
		arg = strings.TrimSpace(parts[1])
	}
	switch parts[0] {
	case "\\q", "\\quit", "\\exit":
		return true
	case "\\explain":
		script, err := db.ExplainRewrite(strings.TrimSuffix(arg, ";"))
		if err != nil {
			fmt.Fprintf(os.Stderr, "error: %v\n", err)
			return false
		}
		fmt.Println(script)
	case "\\mode":
		switch arg {
		case "native":
			db.SetMode(prefsql.ModeNative)
		case "rewrite":
			db.SetMode(prefsql.ModeRewrite)
		default:
			fmt.Fprintln(os.Stderr, "usage: \\mode native|rewrite")
		}
	case "\\algo":
		switch arg {
		case "auto":
			db.SetAlgorithm(bmo.Auto)
		case "nl":
			db.SetAlgorithm(bmo.NestedLoop)
		case "bnl":
			db.SetAlgorithm(bmo.BlockNestedLoop)
		case "sfs":
			db.SetAlgorithm(bmo.SortFilter)
		default:
			fmt.Fprintln(os.Stderr, "usage: \\algo auto|nl|bnl|sfs")
		}
	case "\\prefs":
		for _, name := range db.Internal().PreferenceNames() {
			fmt.Printf("preference %s\n", name)
		}
	case "\\tables":
		cat := db.Internal().Engine().Catalog()
		for _, name := range cat.TableNames() {
			tbl, _ := cat.Table(name)
			fmt.Printf("table %s (%d rows)\n", name, tbl.RowCount())
		}
		for _, name := range cat.ViewNames() {
			fmt.Printf("view  %s\n", name)
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown command %s\n", parts[0])
	}
	return false
}

func runStatement(db *prefsql.DB, sql string, timing bool) error {
	start := time.Now()
	res, err := db.Exec(sql)
	if err != nil {
		return err
	}
	fmt.Print(prefsql.Format(res))
	if timing {
		fmt.Printf("(%v)\n", time.Since(start).Round(time.Microsecond))
	}
	return nil
}
