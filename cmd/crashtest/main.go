// Command crashtest is the durability torture harness: it proves that a
// kill -9 at an arbitrary point never loses an acknowledged commit.
//
// The binary plays both roles. The parent re-execs itself with -child
// pointed at a shared data directory; the child opens the durable
// backend, recovers whatever a previous incarnation left behind, and
// appends sequentially numbered rows in small batches, printing
// "ACK <seq>" only AFTER the commit has returned (i.e. after its group
// fsync). The parent reads acks off the pipe, waits a randomized
// interval, SIGKILLs the child mid-flight, then reopens the directory
// in-process and checks the recovered table:
//
//   - the recovered sequence numbers are exactly 1..k with no gaps
//     (the WAL admits only prefixes of the commit order), and
//   - k >= the highest acknowledged seq (durability: acknowledged
//     commits survive), while unacknowledged trailing commits may or
//     may not — both are correct outcomes.
//
// Each iteration then closes the backend cleanly (checkpointing the
// recovered state) so the next child alternately exercises the
// image-plus-WAL and WAL-replay recovery paths.
//
// Usage:
//
//	crashtest -iters 25 -dir /tmp/crash -log crash.log
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"os"
	"os/exec"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/storage/disk"
	"repro/internal/storage/wal"
)

func main() {
	var (
		child     = flag.Bool("child", false, "run as the writer child (internal)")
		dir       = flag.String("dir", "", "data directory (parent default: a fresh temp dir)")
		iters     = flag.Int("iters", 25, "kill/recover iterations")
		seed      = flag.Int64("seed", 0, "randomization seed; 0 = time-based")
		fsyncMode = flag.String("fsync", "always", "WAL sync mode for the writer child")
		minKill   = flag.Duration("min-kill", 20*time.Millisecond, "minimum time before SIGKILL")
		maxKill   = flag.Duration("max-kill", 250*time.Millisecond, "maximum time before SIGKILL")
		logPath   = flag.String("log", "", "also append the iteration log to this file")
	)
	flag.Parse()

	mode, err := wal.ParseSyncMode(*fsyncMode)
	if err != nil {
		log.Fatalf("crashtest: %v", err)
	}
	if *child {
		if *dir == "" {
			log.Fatal("crashtest: -child requires -dir")
		}
		runChild(*dir, mode)
		return
	}
	if err := runParent(*dir, *iters, *seed, *fsyncMode, *minKill, *maxKill, *logPath); err != nil {
		log.Fatalf("crashtest: FAIL: %v", err)
	}
}

// runChild is the victim process: recover, then append acknowledged
// batches until killed. It never exits on its own.
func runChild(dir string, mode wal.SyncMode) {
	d, stats, err := disk.Open(dir, disk.Options{Sync: mode})
	if err != nil {
		log.Fatalf("crashtest child: open: %v", err)
	}
	db := core.OpenOn(engine.NewOn(d.Catalog()))
	if _, ok := d.Catalog().Table("events"); !ok {
		if _, err := db.Exec(`CREATE TABLE events (seq INT PRIMARY KEY, payload TEXT)`); err != nil {
			log.Fatalf("crashtest child: create: %v", err)
		}
	}
	seq := recoveredMax(db)

	w := bufio.NewWriter(os.Stdout)
	fmt.Fprintf(w, "START %d recovered_rows=%d wal_records=%d torn_bytes=%d\n",
		seq, stats.HeapRows, stats.WalRecords, stats.TornBytes)
	w.Flush()

	rng := rand.New(rand.NewSource(time.Now().UnixNano() ^ int64(os.Getpid())))
	for {
		// Small batches with the occasional jumbo payload, so the kill
		// lands at varied spots: mid-batch, mid-group-commit, mid-page,
		// mid-overflow-chain.
		n := 1 + rng.Intn(4)
		var sb strings.Builder
		sb.WriteString(`INSERT INTO events VALUES `)
		for j := 0; j < n; j++ {
			if j > 0 {
				sb.WriteString(", ")
			}
			payload := fmt.Sprintf("payload-%d", seq+j+1)
			if rng.Intn(20) == 0 {
				payload = strings.Repeat("x", 8192+rng.Intn(8192))
			}
			fmt.Fprintf(&sb, "(%d, '%s')", seq+j+1, payload)
		}
		if _, err := db.Exec(sb.String()); err != nil {
			log.Fatalf("crashtest child: insert at seq %d: %v", seq+1, err)
		}
		seq += n
		// The commit has returned, so its WAL record is fsynced (in
		// "always" mode): from here on the parent holds us to it.
		fmt.Fprintf(w, "ACK %d\n", seq)
		w.Flush()
	}
}

// recoveredMax returns the highest committed sequence number; recovery
// guarantees the sequence is a contiguous prefix, but the max is read
// directly so a violated invariant surfaces in verify, not here.
func recoveredMax(db *core.DB) int {
	res, err := db.Query(`SELECT seq FROM events`)
	if err != nil {
		log.Fatalf("crashtest child: recovery scan: %v", err)
	}
	max := 0
	for _, r := range res.Rows {
		if n := int(r[0].I); n > max {
			max = n
		}
	}
	return max
}

func runParent(dir string, iters int, seed int64, fsyncMode string, minKill, maxKill time.Duration, logPath string) error {
	if dir == "" {
		d, err := os.MkdirTemp("", "crashtest-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(d)
		dir = d
	}
	out := io.Writer(os.Stderr)
	if logPath != "" {
		f, err := os.OpenFile(logPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return err
		}
		defer f.Close()
		out = io.MultiWriter(os.Stderr, f)
	}
	lg := log.New(out, "", log.LstdFlags|log.Lmicroseconds)
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	rng := rand.New(rand.NewSource(seed))
	exe, err := os.Executable()
	if err != nil {
		return err
	}
	lg.Printf("crashtest: %d iterations, dir=%s, fsync=%s, seed=%d", iters, dir, fsyncMode, seed)

	prevRecovered := 0
	for i := 1; i <= iters; i++ {
		cmd := exec.Command(exe, "-child", "-dir", dir, "-fsync", fsyncMode)
		cmd.Stderr = os.Stderr
		pipe, err := cmd.StdoutPipe()
		if err != nil {
			return err
		}
		if err := cmd.Start(); err != nil {
			return err
		}
		var maxAck atomic.Int64
		var startLine atomic.Value
		go func() {
			sc := bufio.NewScanner(pipe)
			for sc.Scan() {
				line := sc.Text()
				var n int
				if _, err := fmt.Sscanf(line, "ACK %d", &n); err == nil {
					maxAck.Store(int64(n))
				} else if strings.HasPrefix(line, "START ") {
					startLine.Store(line)
				}
			}
		}()

		delay := minKill + time.Duration(rng.Int63n(int64(maxKill-minKill)+1))
		time.Sleep(delay)
		if err := cmd.Process.Kill(); err != nil {
			return fmt.Errorf("iter %d: kill: %w", i, err)
		}
		cmd.Wait() // expected to report the SIGKILL
		acked := int(maxAck.Load())

		// The child must have picked up exactly where the last
		// verification left off.
		if sl, ok := startLine.Load().(string); ok {
			var started int
			if _, err := fmt.Sscanf(sl, "START %d", &started); err == nil && started != prevRecovered {
				return fmt.Errorf("iter %d: child recovered to seq %d, parent verified %d (%s)", i, started, prevRecovered, sl)
			}
		}

		// Durability floor: everything verified last iteration plus
		// everything this child acknowledged. (Acks are absolute seqs,
		// so a child killed pre-ack leaves the floor at prevRecovered.)
		floor := acked
		if prevRecovered > floor {
			floor = prevRecovered
		}
		recovered, stats, err := verify(dir, i, floor)
		if err != nil {
			return err
		}
		lg.Printf("iter %02d/%d: killed after %v, acked=%d recovered=%d (+%d unacked) wal_records=%d torn_bytes=%d",
			i, iters, delay.Round(time.Millisecond), acked, recovered, recovered-floor, stats.WalRecords, stats.TornBytes)
		prevRecovered = recovered
	}
	lg.Printf("crashtest: PASS %d/%d iterations, %d rows survived", iters, iters, prevRecovered)
	return nil
}

// verify reopens the data directory in-process, checks the recovered
// table against the durability contract, and leaves behind a clean
// checkpoint for the next iteration.
func verify(dir string, iter, floor int) (int, disk.RecoveryStats, error) {
	d, stats, err := disk.Open(dir, disk.Options{Sync: wal.SyncOff})
	if err != nil {
		return 0, stats, fmt.Errorf("iter %d: recovery open: %w", iter, err)
	}
	db := core.OpenOn(engine.NewOn(d.Catalog()))

	recovered := 0
	if _, ok := d.Catalog().Table("events"); !ok {
		// Killed before even the CREATE TABLE committed: legal only if
		// nothing had ever been acknowledged or verified.
		if floor > 0 {
			return 0, stats, fmt.Errorf("iter %d: committed through seq %d but table lost", iter, floor)
		}
	} else {
		res, err := db.Query(`SELECT seq FROM events`)
		if err != nil {
			return 0, stats, fmt.Errorf("iter %d: scan: %w", iter, err)
		}
		seqs := make([]int, 0, len(res.Rows))
		for _, r := range res.Rows {
			seqs = append(seqs, int(r[0].I))
		}
		sort.Ints(seqs)
		for j, s := range seqs {
			if s != j+1 {
				return 0, stats, fmt.Errorf("iter %d: recovered sequence has a gap: position %d holds seq %d", iter, j, s)
			}
		}
		recovered = len(seqs)
		if recovered < floor {
			return 0, stats, fmt.Errorf("iter %d: lost acknowledged commits: committed through seq %d, recovered only %d rows", iter, floor, recovered)
		}
	}
	if err := d.Close(); err != nil {
		return 0, stats, fmt.Errorf("iter %d: checkpoint close: %w", iter, err)
	}
	return recovered, stats, nil
}
