// Command benchgate is the CI performance-regression gate: it compares
// fresh quick-run benchmark JSONs (p4: parallel BMO, p5: join pushdown,
// p6: vectorized BMO, p7: instrumentation overhead, p8: live-query
// maintenance, p9: distributed scale-out, p10: durable-storage overhead)
// against the committed baselines and fails when a headline speedup
// regressed by more than the tolerance (default 25%).
//
// The gate compares speedup ratios, not wall-clock milliseconds: a ratio
// (pushed vs unpushed plan, parallel vs sequential BNL, vectorized vs
// row-at-a-time SFS) divides out the runner's absolute speed, so the
// same baseline works on any CI machine. Cells are matched by their
// identifying fields; baseline cells without a fresh counterpart (e.g.
// full-scale sizes against a quick run) are skipped, but at least one
// cell must match per supplied pair.
//
// Experiments register in the gates table; a new experiment adds an
// extract function (result JSON → gated cells) and rides the shared
// flag, matching and verdict machinery.
//
// Usage:
//
//	benchgate -fresh-p5 BENCH_p5.json -base-p5 internal/bench/baselines/BENCH_p5.quick.json \
//	          -fresh-p4 BENCH_p4.json -base-p4 internal/bench/baselines/BENCH_p4.quick.json \
//	          -fresh-p6 BENCH_p6.json -base-p6 internal/bench/baselines/BENCH_p6.quick.json \
//	          -fresh-p7 BENCH_p7.json -base-p7 internal/bench/baselines/BENCH_p7.quick.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/bench"
)

// gateSpec is one experiment's entry in the gate registry. extract
// reduces a result file to its gated cells: identifying key → headline
// speedup, omitting cells that are denominators rather than claims (the
// sequential baseline rows). floor, when true, additionally requires
// every fresh cell to keep the -min-speedup absolute ratio — the "the
// optimization still wins at all" check on top of the relative one.
type gateSpec struct {
	name    string
	what    string // one-line description for the flag help
	extract func(path string) (map[string]float64, error)
	floor   bool
	min     float64 // per-gate floor override; 0 = use the -min-speedup flag

	fresh, base *string // filled from flags
}

func load(path string, v any) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	return json.Unmarshal(data, v)
}

func extractP4(path string) (map[string]float64, error) {
	var res bench.P4Result
	if err := load(path, &res); err != nil {
		return nil, err
	}
	out := map[string]float64{}
	for _, e := range res.Entries {
		if e.Workers == 0 {
			continue // the sequential baseline is the denominator, not a cell
		}
		out[fmt.Sprintf("%d/%s", e.Rows, e.Variant)] = e.Speedup
	}
	return out, nil
}

func extractP5(path string) (map[string]float64, error) {
	var res bench.P5Result
	if err := load(path, &res); err != nil {
		return nil, err
	}
	out := map[string]float64{}
	for _, e := range res.Entries {
		if e.Variant != "pushdown-on" {
			continue
		}
		out[fmt.Sprintf("%d/%s/%s", e.Rows, e.Query, e.Variant)] = e.Speedup
	}
	return out, nil
}

func extractP7(path string) (map[string]float64, error) {
	var res bench.P7Result
	if err := load(path, &res); err != nil {
		return nil, err
	}
	out := map[string]float64{}
	for _, e := range res.Entries {
		if e.Variant != "recorded" {
			continue
		}
		out[fmt.Sprintf("%d/%s", e.Rows, e.Variant)] = e.Speedup
	}
	return out, nil
}

func extractP8(path string) (map[string]float64, error) {
	var res bench.P8Result
	if err := load(path, &res); err != nil {
		return nil, err
	}
	out := map[string]float64{}
	for _, e := range res.Entries {
		// Gate only the headline 10-subscription cell: its ratio vs the
		// subscription-free baseline is the "writers stay within 2x"
		// claim. The 0-sub row is the denominator and the 100-sub row is
		// a scaling observation, not a bound.
		if e.Subs != 10 {
			continue
		}
		out[fmt.Sprintf("subs=%d", e.Subs)] = e.Ratio
	}
	return out, nil
}

func extractP9(path string) (map[string]float64, error) {
	var res bench.P9Result
	if err := load(path, &res); err != nil {
		return nil, err
	}
	// Gate only the headline cell: the largest shard count at the largest
	// size. The single-node rows are denominators, the small sizes and
	// lower shard counts are protocol-overhead observations where dial
	// cost can dominate on a shared runner.
	maxRows, maxShards := 0, 0
	for _, e := range res.Entries {
		if e.Rows > maxRows {
			maxRows = e.Rows
		}
		if e.Shards > maxShards {
			maxShards = e.Shards
		}
	}
	out := map[string]float64{}
	for _, e := range res.Entries {
		if e.Rows == maxRows && e.Shards == maxShards && e.Shards > 0 {
			out[fmt.Sprintf("%d/%s", e.Rows, e.Variant)] = e.Speedup
		}
	}
	return out, nil
}

func extractP10(path string) (map[string]float64, error) {
	var res bench.P10Result
	if err := load(path, &res); err != nil {
		return nil, err
	}
	// Gate only the fsync-off disk cell at the largest size: its ratio vs
	// the in-memory run is the structural cost of logging and paging
	// every commit. The fsync-on cell is recorded but not gated — its
	// cost is whatever the runner's storage charges for fsync, which a
	// shared CI box cannot hold to a floor.
	maxRows := 0
	for _, e := range res.Entries {
		if e.Rows > maxRows {
			maxRows = e.Rows
		}
	}
	out := map[string]float64{}
	for _, e := range res.Entries {
		if e.Rows == maxRows && e.Variant == "disk" {
			out[fmt.Sprintf("%d/%s", e.Rows, e.Variant)] = e.Ratio
		}
	}
	return out, nil
}

func extractP6(path string) (map[string]float64, error) {
	var res bench.P6Result
	if err := load(path, &res); err != nil {
		return nil, err
	}
	out := map[string]float64{}
	for _, e := range res.Entries {
		if e.Variant != "vec" {
			continue
		}
		out[fmt.Sprintf("%d/%s", e.Rows, e.Variant)] = e.Speedup
	}
	return out, nil
}

var gates = []*gateSpec{
	{name: "p4", what: "parallel BMO", extract: extractP4},
	{name: "p5", what: "join pushdown", extract: extractP5, floor: true},
	{name: "p6", what: "vectorized BMO", extract: extractP6, floor: true},
	// p7's ratio is instrumented-off vs instrumented-on of the same plan:
	// the ideal is 1.0x and the budget is 3% (0.97x, held by the
	// committed full-scale BENCH_p7.json). The quick-run CI floor sits at
	// 0.90x: the overhead signal at quick scale is itself a few percent
	// and shared runners jitter by about as much — a tighter floor would
	// flake, while a 10% drop still catches any structural regression
	// (the un-sampled recorder cost 40%).
	{name: "p7", what: "instrumentation overhead", extract: extractP7, floor: true, min: 0.90},
	// p8's ratio is DML throughput with 10 live subscriptions vs none —
	// the incremental-maintenance tax on writers. The claim is "within
	// 2x" (0.50); the quick CI floor sits at 0.40 to absorb shared-runner
	// scheduling noise on a concurrency-sensitive measurement, while
	// still catching a structural regression (a full recompute per DML
	// statement lands far below it).
	{name: "p8", what: "live-query maintenance", extract: extractP8, floor: true, min: 0.40},
	// p9's ratio is scatter-gather over 4 shard servers vs one local
	// worker on the same data. The in-process cluster shares the runner's
	// cores, so on a 1-2 core CI box the distributed path pays the wire
	// round-trips and the shards' SFS sort with little parallel scan gain
	// to show for it (~0.35x observed single-core). The 0.25 floor is the
	// catastrophe check: a ship-all-rows regression (shards returning raw
	// partitions instead of local skylines) lands far below it.
	{name: "p9", what: "distributed scale-out", extract: extractP9, floor: true, min: 0.25},
	// p10's ratio is mixed read/write throughput on the disk backend
	// (WAL + paged heap, fsync off) vs the in-memory backend. Scans
	// dominate the workload, so the observed ratio sits near 1.0; the
	// 0.25 floor is the catastrophe check — an fsync accidentally forced
	// per statement, or a page pool thrashing on every commit, lands far
	// below it.
	{name: "p10", what: "durable-storage overhead", extract: extractP10, floor: true, min: 0.25},
}

// check compares one matched cell, printing the verdict line; the
// returned flag reports a regression beyond tolerance.
func check(name string, fresh, base, tol float64) bool {
	floor := base * (1 - tol)
	status := "ok"
	bad := fresh < floor
	if bad {
		status = "REGRESSED"
	}
	fmt.Printf("%-60s baseline %6.2fx  fresh %6.2fx  floor %6.2fx  %s\n",
		name, base, fresh, floor, status)
	return bad
}

// run executes one gate pair: every baseline cell with a fresh
// counterpart must hold its speedup within tolerance (and above the
// absolute floor where the gate demands one).
func (g *gateSpec) run(tol, minSpeedup float64) (matched int, failed bool, err error) {
	freshCells, err := g.extract(*g.fresh)
	if err != nil {
		return 0, false, err
	}
	baseCells, err := g.extract(*g.base)
	if err != nil {
		return 0, false, err
	}
	keys := make([]string, 0, len(baseCells))
	for k := range baseCells {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, key := range keys {
		f, ok := freshCells[key]
		if !ok {
			continue
		}
		matched++
		if check(g.name+" "+key, f, baseCells[key], tol) {
			failed = true
		}
		floor := minSpeedup
		if g.min > 0 {
			floor = g.min
		}
		if g.floor && f < floor {
			fmt.Printf("%s %s: the optimized plan no longer beats its baseline (%.2fx < %.2fx)\n",
				g.name, key, f, floor)
			failed = true
		}
	}
	return matched, failed, nil
}

func main() {
	for _, g := range gates {
		g.fresh = flag.String("fresh-"+g.name, "", fmt.Sprintf("fresh BENCH_%s.json for the %s gate ('' skips it)", g.name, g.what))
		g.base = flag.String("base-"+g.name, "", fmt.Sprintf("committed %s baseline JSON", g.name))
	}
	var (
		tol        = flag.Float64("tolerance", 0.25, "allowed relative speedup regression")
		minSpeedup = flag.Float64("min-speedup", 1.0, "p5/p6 optimized plans must keep at least this speedup")
	)
	flag.Parse()

	fail := false
	ran := false
	for _, g := range gates {
		if *g.fresh == "" {
			continue
		}
		ran = true
		n, bad, err := g.run(*tol, *minSpeedup)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: %s: %v\n", g.name, err)
			os.Exit(1)
		}
		if n == 0 {
			fmt.Fprintf(os.Stderr, "benchgate: %s: no baseline cell matched the fresh run\n", g.name)
			os.Exit(1)
		}
		fail = fail || bad
	}
	if !ran {
		fmt.Fprintln(os.Stderr, "benchgate: nothing to compare (pass -fresh-p4/-fresh-p5/-fresh-p6/-fresh-p7/-fresh-p8/-fresh-p9/-fresh-p10)")
		os.Exit(1)
	}
	if fail {
		fmt.Println("benchgate: FAIL — performance regressed beyond tolerance")
		os.Exit(1)
	}
	fmt.Println("benchgate: all gates passed")
}
