// Command benchgate is the CI performance-regression gate: it compares a
// fresh quick-run benchmark JSON (p4: parallel BMO, p5: join pushdown)
// against the committed baseline and fails when a headline speedup
// regressed by more than the tolerance (default 25%).
//
// The gate compares speedup ratios, not wall-clock milliseconds: a ratio
// (pushed vs unpushed plan, parallel vs sequential BNL) divides out the
// runner's absolute speed, so the same baseline works on any CI machine.
// Cells are matched by their identifying fields; baseline cells without a
// fresh counterpart (e.g. full-scale sizes against a quick run) are
// skipped, but at least one cell must match per supplied pair.
//
// Usage:
//
//	benchgate -fresh-p5 BENCH_p5.json -base-p5 internal/bench/baselines/BENCH_p5.quick.json \
//	          -fresh-p4 BENCH_p4.json -base-p4 internal/bench/baselines/BENCH_p4.quick.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
)

func load(path string, v any) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	return json.Unmarshal(data, v)
}

// check compares one matched cell, printing the verdict line; the
// returned flag reports a regression beyond tolerance.
func check(name string, fresh, base, tol float64) bool {
	floor := base * (1 - tol)
	status := "ok"
	bad := fresh < floor
	if bad {
		status = "REGRESSED"
	}
	fmt.Printf("%-60s baseline %6.2fx  fresh %6.2fx  floor %6.2fx  %s\n",
		name, base, fresh, floor, status)
	return bad
}

func gateP5(freshPath, basePath string, tol, minSpeedup float64) (matched int, failed bool, err error) {
	var fresh, base bench.P5Result
	if err := load(freshPath, &fresh); err != nil {
		return 0, false, err
	}
	if err := load(basePath, &base); err != nil {
		return 0, false, err
	}
	freshBy := map[string]bench.P5Entry{}
	for _, e := range fresh.Entries {
		freshBy[fmt.Sprintf("%d/%s/%s", e.Rows, e.Query, e.Variant)] = e
	}
	for _, b := range base.Entries {
		if b.Variant != "pushdown-on" {
			continue
		}
		key := fmt.Sprintf("%d/%s/%s", b.Rows, b.Query, b.Variant)
		f, ok := freshBy[key]
		if !ok {
			continue
		}
		matched++
		if check("p5 "+key, f.Speedup, b.Speedup, tol) {
			failed = true
		}
		if f.Speedup < minSpeedup {
			fmt.Printf("p5 %s: pushed plan no longer beats the unpushed plan (%.2fx < %.2fx)\n",
				key, f.Speedup, minSpeedup)
			failed = true
		}
	}
	return matched, failed, nil
}

func gateP4(freshPath, basePath string, tol float64) (matched int, failed bool, err error) {
	var fresh, base bench.P4Result
	if err := load(freshPath, &fresh); err != nil {
		return 0, false, err
	}
	if err := load(basePath, &base); err != nil {
		return 0, false, err
	}
	freshBy := map[string]bench.P4Entry{}
	for _, e := range fresh.Entries {
		freshBy[fmt.Sprintf("%d/%s", e.Rows, e.Variant)] = e
	}
	for _, b := range base.Entries {
		if b.Workers == 0 {
			continue // the sequential baseline is the denominator, not a cell
		}
		key := fmt.Sprintf("%d/%s", b.Rows, b.Variant)
		f, ok := freshBy[key]
		if !ok {
			continue
		}
		matched++
		if check("p4 "+key, f.Speedup, b.Speedup, tol) {
			failed = true
		}
	}
	return matched, failed, nil
}

func main() {
	var (
		freshP4    = flag.String("fresh-p4", "", "fresh BENCH_p4.json ('' skips the p4 gate)")
		baseP4     = flag.String("base-p4", "", "committed p4 baseline JSON")
		freshP5    = flag.String("fresh-p5", "", "fresh BENCH_p5.json ('' skips the p5 gate)")
		baseP5     = flag.String("base-p5", "", "committed p5 baseline JSON")
		tol        = flag.Float64("tolerance", 0.25, "allowed relative speedup regression")
		minSpeedup = flag.Float64("min-speedup", 1.0, "p5 pushed plans must keep at least this speedup")
	)
	flag.Parse()

	fail := false
	ran := false
	if *freshP5 != "" {
		ran = true
		n, bad, err := gateP5(*freshP5, *baseP5, *tol, *minSpeedup)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: p5: %v\n", err)
			os.Exit(1)
		}
		if n == 0 {
			fmt.Fprintln(os.Stderr, "benchgate: p5: no baseline cell matched the fresh run")
			os.Exit(1)
		}
		fail = fail || bad
	}
	if *freshP4 != "" {
		ran = true
		n, bad, err := gateP4(*freshP4, *baseP4, *tol)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: p4: %v\n", err)
			os.Exit(1)
		}
		if n == 0 {
			fmt.Fprintln(os.Stderr, "benchgate: p4: no baseline cell matched the fresh run")
			os.Exit(1)
		}
		fail = fail || bad
	}
	if !ran {
		fmt.Fprintln(os.Stderr, "benchgate: nothing to compare (pass -fresh-p4/-fresh-p5)")
		os.Exit(1)
	}
	if fail {
		fmt.Println("benchgate: FAIL — performance regressed beyond tolerance")
		os.Exit(1)
	}
	fmt.Println("benchgate: all gates passed")
}
