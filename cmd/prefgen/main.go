// Command prefgen emits the synthetic benchmark datasets as CSV (no
// header), suitable for the storage layer's LoadCSV or external tools.
//
// Usage:
//
//	prefgen -kind jobs -n 140000 > jobs.csv
//	prefgen -kind skyline -n 5000 -dims 4 -dist anti > points.csv
//	prefgen -kind cars -n 1000 -seed 7 > cars.csv
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/datagen"
	"repro/internal/value"
)

func main() {
	var (
		kind = flag.String("kind", "jobs", "dataset: jobs, cars, appliances, oldtimer, skyline")
		n    = flag.Int("n", 1000, "row count")
		seed = flag.Int64("seed", 2002, "generator seed")
		dims = flag.Int("dims", 3, "dimensions (skyline only)")
		dist = flag.String("dist", "indep", "distribution (skyline only): indep, corr, anti")
	)
	flag.Parse()

	var rows []value.Row
	switch *kind {
	case "jobs":
		rows = datagen.Jobs(*n, *seed)
	case "cars":
		rows = datagen.Cars(*n, *seed)
	case "appliances":
		rows = datagen.Appliances(*n, *seed)
	case "oldtimer":
		rows = datagen.Oldtimers()
	case "skyline":
		var d datagen.Distribution
		switch *dist {
		case "indep":
			d = datagen.Independent
		case "corr":
			d = datagen.Correlated
		case "anti":
			d = datagen.AntiCorrelated
		default:
			fmt.Fprintf(os.Stderr, "prefgen: unknown distribution %q\n", *dist)
			os.Exit(1)
		}
		rows = datagen.Skyline(*n, *dims, d, *seed)
	default:
		fmt.Fprintf(os.Stderr, "prefgen: unknown kind %q\n", *kind)
		os.Exit(1)
	}

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	for _, row := range rows {
		cells := make([]string, len(row))
		for i, v := range row {
			s := v.String()
			if v.K == value.Null {
				s = ""
			}
			if strings.ContainsAny(s, ",\"\n") {
				s = "\"" + strings.ReplaceAll(s, "\"", "\"\"") + "\""
			}
			cells[i] = s
		}
		fmt.Fprintln(w, strings.Join(cells, ","))
	}
}
