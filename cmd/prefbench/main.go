// Command prefbench regenerates the paper's evaluation tables and figures
// (see DESIGN.md's experiment index and EXPERIMENTS.md for the recorded
// outcomes).
//
// Usage:
//
//	prefbench -exp all                  # every experiment at default scale
//	prefbench -exp e1 -rows 140000      # the §3.3 benchmark at 1/10 scale
//	prefbench -exp e4 -latency 1.0      # COSIMA with realistic shop latency
//	prefbench -exp p2                   # server throughput; writes BENCH_p2.json
//	prefbench -exp p3                   # parameterized vs literal; writes BENCH_p3.json
//	prefbench -exp p4                   # sequential vs parallel BMO; writes BENCH_p4.json
//	prefbench -exp p5                   # BMO-through-join pushdown; writes BENCH_p5.json
//	prefbench -exp p6                   # row-at-a-time vs vectorized BMO; writes BENCH_p6.json
//	prefbench -exp p7                   # per-operator instrumentation overhead; writes BENCH_p7.json
//	prefbench -exp p8                   # live-query maintenance cost; writes BENCH_p8.json
//	prefbench -exp p9                   # distributed scale-out vs scale-up; writes BENCH_p9.json
//	prefbench -exp p10                  # durable-storage overhead; writes BENCH_p10.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/bench"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment to run: "+strings.Join(bench.Names(), ", ")+" or 'all'")
		rows    = flag.Int("rows", 0, "job relation size for e1/a1 (default 140000)")
		seed    = flag.Int64("seed", 0, "generator seed (default 2002)")
		latency = flag.Float64("latency", -1, "COSIMA latency scale; 1.0 = realistic 300-900ms shops (default 0)")
		runs    = flag.Int("cosima-runs", 0, "COSIMA meta-searches for e4 (default 200)")
		quick   = flag.Bool("quick", false, "use the small test-scale configuration")
		p2json  = flag.String("json", "BENCH_p2.json", "file for the structured p2 results ('' disables)")
		p3json  = flag.String("json-p3", "BENCH_p3.json", "file for the structured p3 results ('' disables)")
		p4json  = flag.String("json-p4", "BENCH_p4.json", "file for the structured p4 results ('' disables)")
		p5json  = flag.String("json-p5", "BENCH_p5.json", "file for the structured p5 results ('' disables)")
		p6json  = flag.String("json-p6", "BENCH_p6.json", "file for the structured p6 results ('' disables)")
		p7json  = flag.String("json-p7", "BENCH_p7.json", "file for the structured p7 results ('' disables)")
		p8json  = flag.String("json-p8", "BENCH_p8.json", "file for the structured p8 results ('' disables)")
		p9json  = flag.String("json-p9", "BENCH_p9.json", "file for the structured p9 results ('' disables)")
		p10json = flag.String("json-p10", "BENCH_p10.json", "file for the structured p10 results ('' disables)")
	)
	flag.Parse()

	cfg := bench.DefaultConfig()
	if *quick {
		cfg = bench.TestConfig()
	}
	if *rows > 0 {
		cfg.JobRows = *rows
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	if *latency >= 0 {
		cfg.CosimaLatencyScale = *latency
	}
	if *runs > 0 {
		cfg.CosimaRuns = *runs
	}

	names := []string{*exp}
	if *exp == "all" {
		names = bench.Names()
	}
	// emitJSON renders a table and writes the structured results next to
	// it, so CI and regression tooling can track throughput, latency
	// percentiles and cache hit rates.
	emitJSON := func(name, path string, res any, tbl *bench.Table, err error) {
		if err != nil {
			fmt.Fprintf(os.Stderr, "prefbench: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println(tbl.String())
		data, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "prefbench: %s: %v\n", name, err)
			os.Exit(1)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "prefbench: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", path)
	}

	for _, name := range names {
		switch {
		case name == "p2" && *p2json != "":
			res, tbl, err := bench.P2(cfg)
			emitJSON(name, *p2json, res, tbl, err)
			continue
		case name == "p3" && *p3json != "":
			res, tbl, err := bench.P3(cfg)
			emitJSON(name, *p3json, res, tbl, err)
			continue
		case name == "p4" && *p4json != "":
			res, tbl, err := bench.P4(cfg)
			emitJSON(name, *p4json, res, tbl, err)
			continue
		case name == "p5" && *p5json != "":
			res, tbl, err := bench.P5(cfg)
			emitJSON(name, *p5json, res, tbl, err)
			continue
		case name == "p6" && *p6json != "":
			res, tbl, err := bench.P6(cfg)
			emitJSON(name, *p6json, res, tbl, err)
			continue
		case name == "p7" && *p7json != "":
			res, tbl, err := bench.P7(cfg)
			emitJSON(name, *p7json, res, tbl, err)
			continue
		case name == "p8" && *p8json != "":
			res, tbl, err := bench.P8(cfg)
			emitJSON(name, *p8json, res, tbl, err)
			continue
		case name == "p9" && *p9json != "":
			res, tbl, err := bench.P9(cfg)
			emitJSON(name, *p9json, res, tbl, err)
			continue
		case name == "p10" && *p10json != "":
			res, tbl, err := bench.P10(cfg)
			emitJSON(name, *p10json, res, tbl, err)
			continue
		}
		out, err := bench.Run(name, cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "prefbench: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println(out)
	}
}
