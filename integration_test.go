package prefsql

import (
	"strings"
	"testing"
)

// TestPaperQueriesEndToEnd walks every query the paper presents in §2
// through the public facade, in both execution modes.
func TestPaperQueriesEndToEnd(t *testing.T) {
	setup := `
CREATE TABLE trips (id INT, duration INT, start_day DATE);
INSERT INTO trips VALUES (1, 7, '1999-06-20'), (2, 13, '1999-07-02'), (3, 15, '1999-07-05'), (4, 28, '1999-08-01');

CREATE TABLE apartments (id INT, area INT);
INSERT INTO apartments VALUES (1, 55), (2, 120), (3, 80), (4, 120);

CREATE TABLE programmers (id INT, exp VARCHAR);
INSERT INTO programmers VALUES (1, 'java'), (2, 'cobol'), (3, 'C++'), (4, 'perl');

CREATE TABLE hotels (id INT, location VARCHAR);
INSERT INTO hotels VALUES (1, 'downtown'), (2, 'suburb'), (3, 'airport');

CREATE TABLE computers (id INT, main_memory INT, cpu_speed INT, color VARCHAR);
INSERT INTO computers VALUES
	(1, 512, 2000, 'black'), (2, 256, 3000, 'beige'),
	(3, 512, 1500, 'brown'), (4, 128, 1000, 'black');
`
	cases := []struct {
		name  string
		query string
		// wantIDs is the expected id set (order-insensitive)
		wantIDs []int64
	}{
		{
			"around",
			"SELECT id FROM trips PREFERRING duration AROUND 14",
			[]int64{2, 3},
		},
		{
			"highest",
			"SELECT id FROM apartments PREFERRING HIGHEST(area)",
			[]int64{2, 4},
		},
		{
			"pos",
			"SELECT id FROM programmers PREFERRING exp IN ('java', 'C++')",
			[]int64{1, 3},
		},
		{
			"neg",
			"SELECT id FROM hotels PREFERRING location <> 'downtown'",
			[]int64{2, 3},
		},
		{
			"pareto",
			"SELECT id FROM computers PREFERRING HIGHEST(main_memory) AND HIGHEST(cpu_speed)",
			[]int64{1, 2},
		},
		{
			"cascade",
			"SELECT id FROM computers PREFERRING HIGHEST(main_memory) CASCADE color IN ('black', 'brown')",
			[]int64{1, 3},
		},
		{
			"neg-only-bad-options-left",
			// all hotels downtown: NEG still returns them (better than nothing)
			"SELECT id FROM hotels WHERE location = 'downtown' PREFERRING location <> 'downtown'",
			[]int64{1},
		},
		{
			"but-only-empty-is-intended",
			"SELECT id FROM trips PREFERRING duration AROUND 20 BUT ONLY DISTANCE(duration) <= 1",
			nil,
		},
	}
	for _, mode := range []Mode{ModeNative, ModeRewrite} {
		db := Open()
		db.SetMode(mode)
		db.MustExec(setup)
		for _, tc := range cases {
			res, err := db.Query(tc.query)
			if err != nil {
				t.Fatalf("%v/%s: %v", mode, tc.name, err)
			}
			got := map[int64]bool{}
			for _, r := range res.Rows {
				got[r[0].I] = true
			}
			if len(got) != len(tc.wantIDs) {
				t.Errorf("%v/%s: got %d rows %v, want ids %v", mode, tc.name, len(res.Rows), got, tc.wantIDs)
				continue
			}
			for _, id := range tc.wantIDs {
				if !got[id] {
					t.Errorf("%v/%s: missing id %d (got %v)", mode, tc.name, id, got)
				}
			}
		}
	}
}

// TestFullSessionScenario is a realistic application session: schema
// setup, data loading, named preferences, preference queries with
// explanation, INSERT ... SELECT with preferences, and cleanup.
func TestFullSessionScenario(t *testing.T) {
	db := Open()
	db.MustExec(`
		CREATE TABLE cars (id INT PRIMARY KEY, make VARCHAR, price INT, mileage INT, color VARCHAR);
		CREATE INDEX idx_make ON cars (make);
		INSERT INTO cars VALUES
			(1, 'Opel', 41000, 30000, 'red'),
			(2, 'Opel', 39000, 20000, 'blue'),
			(3, 'Audi', 52000, 10000, 'red'),
			(4, 'Opel', 39500, 60000, 'red'),
			(5, 'Audi', 48000, 80000, 'black');
		CREATE PREFERENCE budget AS price AROUND 40000;
		CREATE PREFERENCE lowuse AS LOWEST(mileage);
	`)

	res := db.MustExec(`SELECT id, DISTANCE(price) FROM cars WHERE make = 'Opel'
		PREFERRING PREFERENCE budget AND PREFERENCE lowuse ORDER BY id`)
	if len(res.Rows) != 2 {
		t.Fatalf("pareto over named prefs: %v", res.Rows)
	}

	db.MustExec(`CREATE TABLE shortlist (id INT, price INT)`)
	ins := db.MustExec(`INSERT INTO shortlist
		SELECT id, price FROM cars WHERE make = 'Opel' PREFERRING PREFERENCE budget`)
	if ins.Affected == 0 {
		t.Fatal("shortlist empty")
	}

	// plain SQL continues to work side by side
	agg := db.MustExec(`SELECT make, COUNT(*) AS n, MIN(price) FROM cars GROUP BY make ORDER BY make`)
	if len(agg.Rows) != 2 || agg.Rows[0][0].S != "Audi" {
		t.Fatalf("aggregation: %v", agg.Rows)
	}

	db.MustExec(`DROP PREFERENCE budget; DROP PREFERENCE lowuse; DROP TABLE shortlist`)
}

// TestExplainMatchesPaperPattern pins the §3.2 rewrite pattern at the
// facade level.
func TestExplainMatchesPaperPattern(t *testing.T) {
	db := Open()
	db.MustExec(`CREATE TABLE Cars (Identifier INT, Make VARCHAR, Diesel VARCHAR)`)
	script, err := db.ExplainRewrite(`SELECT * FROM Cars PREFERRING Make = 'Audi' AND Diesel = 'yes'`)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"CASE WHEN", "IN ('Audi')", "IN ('yes')",
		"NOT EXISTS", "<=", "<",
	} {
		if !strings.Contains(script, want) {
			t.Errorf("script lacks %q:\n%s", want, script)
		}
	}
}

// TestLargeScaleSmoke keeps a moderately large end-to-end run in the unit
// suite so regressions in the hot path surface quickly.
func TestLargeScaleSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	db := Open()
	db.MustExec(`CREATE TABLE pts (id INT, x INT, y INT)`)
	var sb strings.Builder
	sb.WriteString("INSERT INTO pts VALUES ")
	for i := 0; i < 5000; i++ {
		if i > 0 {
			sb.WriteString(", ")
		}
		x := (i * 7919) % 1000
		y := (i * 104729) % 1000
		sb.WriteString("(")
		sb.WriteString(itoa(int64(i)))
		sb.WriteString(", ")
		sb.WriteString(itoa(int64(x)))
		sb.WriteString(", ")
		sb.WriteString(itoa(int64(y)))
		sb.WriteString(")")
	}
	db.MustExec(sb.String())
	res := db.MustExec(`SELECT id FROM pts PREFERRING LOWEST(x) AND LOWEST(y)`)
	if len(res.Rows) == 0 || len(res.Rows) > 100 {
		t.Fatalf("skyline size: %d", len(res.Rows))
	}
	// soundness spot check against a direct scan
	all := db.MustExec(`SELECT x, y FROM pts`)
	sky := db.MustExec(`SELECT x, y FROM pts PREFERRING LOWEST(x) AND LOWEST(y)`)
	for _, s := range sky.Rows {
		for _, a := range all.Rows {
			if a[0].I <= s[0].I && a[1].I <= s[1].I && (a[0].I < s[0].I || a[1].I < s[1].I) {
				t.Fatalf("skyline row %v dominated by %v", s, a)
			}
		}
	}
}

func itoa(i int64) string {
	if i == 0 {
		return "0"
	}
	var buf [20]byte
	n := len(buf)
	neg := i < 0
	if neg {
		i = -i
	}
	for i > 0 {
		n--
		buf[n] = byte('0' + i%10)
		i /= 10
	}
	if neg {
		n--
		buf[n] = '-'
	}
	return string(buf[n:])
}
