package driver

import (
	"database/sql"
	"database/sql/driver"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/value"
)

func openDB(t *testing.T) *sql.DB {
	t.Helper()
	db, err := sql.Open("prefsql", ":memory:")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	// Force a single connection so the in-memory state is shared across
	// statements of a test.
	db.SetMaxOpenConns(1)
	return db
}

func TestStandardSQLThroughDriver(t *testing.T) {
	db := openDB(t)
	if _, err := db.Exec("CREATE TABLE t (a INT, b VARCHAR)"); err != nil {
		t.Fatal(err)
	}
	res, err := db.Exec("INSERT INTO t VALUES (1, 'x'), (2, 'y')")
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := res.RowsAffected(); n != 2 {
		t.Errorf("affected: %d", n)
	}
	rows, err := db.Query("SELECT a, b FROM t ORDER BY a")
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	var got []string
	for rows.Next() {
		var a int64
		var b string
		if err := rows.Scan(&a, &b); err != nil {
			t.Fatal(err)
		}
		got = append(got, b)
	}
	if len(got) != 2 || got[0] != "x" {
		t.Errorf("rows: %v", got)
	}
}

// The headline scenario: a legacy database/sql application issuing a
// PREFERRING query through the standard driver API.
func TestPreferenceQueryThroughDriver(t *testing.T) {
	db := openDB(t)
	if _, err := db.Exec(`CREATE TABLE trips (id INT, duration INT)`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`INSERT INTO trips VALUES (1, 7), (2, 13), (3, 15), (4, 28)`); err != nil {
		t.Fatal(err)
	}
	rows, err := db.Query(`SELECT id FROM trips PREFERRING duration AROUND 14 ORDER BY id`)
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	var ids []int64
	for rows.Next() {
		var id int64
		if err := rows.Scan(&id); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	if len(ids) != 2 || ids[0] != 2 || ids[1] != 3 {
		t.Errorf("ids: %v", ids)
	}
}

func TestPlaceholders(t *testing.T) {
	db := openDB(t)
	if _, err := db.Exec("CREATE TABLE p (a INT, b VARCHAR, c FLOAT, d BOOLEAN, e DATE)"); err != nil {
		t.Fatal(err)
	}
	when := time.Date(1999, time.July, 3, 0, 0, 0, 0, time.UTC)
	if _, err := db.Exec("INSERT INTO p VALUES (?, ?, ?, ?, ?)", 7, "O'Brien", 2.5, true, when); err != nil {
		t.Fatal(err)
	}
	var (
		a int64
		b string
		c float64
		d bool
		e time.Time
	)
	err := db.QueryRow("SELECT a, b, c, d, e FROM p WHERE a = ?", 7).Scan(&a, &b, &c, &d, &e)
	if err != nil {
		t.Fatal(err)
	}
	if a != 7 || b != "O'Brien" || c != 2.5 || !d || e.Day() != 3 {
		t.Errorf("scan: %v %v %v %v %v", a, b, c, d, e)
	}
}

func TestPlaceholderInPreference(t *testing.T) {
	db := openDB(t)
	if _, err := db.Exec(`CREATE TABLE trips (id INT, duration INT);`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`INSERT INTO trips VALUES (1, 7), (2, 13)`); err != nil {
		t.Fatal(err)
	}
	var id int64
	err := db.QueryRow("SELECT id FROM trips PREFERRING duration AROUND ?", 14).Scan(&id)
	if err != nil {
		t.Fatal(err)
	}
	if id != 2 {
		t.Errorf("id: %d", id)
	}
}

func TestNullScan(t *testing.T) {
	db := openDB(t)
	if _, err := db.Exec("CREATE TABLE n (a INT); INSERT INTO n VALUES (NULL)"); err != nil {
		t.Fatal(err)
	}
	var a sql.NullInt64
	if err := db.QueryRow("SELECT a FROM n").Scan(&a); err != nil {
		t.Fatal(err)
	}
	if a.Valid {
		t.Error("expected NULL")
	}
}

func TestNamedSharedInstance(t *testing.T) {
	db1, err := sql.Open("prefsql", "shared_test_db")
	if err != nil {
		t.Fatal(err)
	}
	defer db1.Close()
	if _, err := db1.Exec("CREATE TABLE s (a INT); INSERT INTO s VALUES (42)"); err != nil {
		t.Fatal(err)
	}
	db2, err := sql.Open("prefsql", "shared_test_db")
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	var a int64
	if err := db2.QueryRow("SELECT a FROM s").Scan(&a); err != nil {
		t.Fatal(err)
	}
	if a != 42 {
		t.Errorf("a: %d", a)
	}
}

func TestTransactionsAreAccepted(t *testing.T) {
	db := openDB(t)
	if _, err := db.Exec("CREATE TABLE t (a INT)"); err != nil {
		t.Fatal(err)
	}
	tx, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec("INSERT INTO t VALUES (1)"); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	var n int64
	if err := db.QueryRow("SELECT COUNT(*) FROM t").Scan(&n); err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("count: %d", n)
	}
}

func TestErrorsSurfaced(t *testing.T) {
	db := openDB(t)
	if _, err := db.Exec("SELEKT 1"); err == nil {
		t.Error("syntax error should surface")
	}
	if _, err := db.Exec("SELECT ? FROM nope"); err == nil {
		t.Error("missing args should surface")
	}
	if _, err := db.Query("SELECT 1 WHERE 'unterminated"); err == nil {
		t.Error("unterminated literal should surface")
	}
}

func TestBindHelpers(t *testing.T) {
	if n, _ := CountPlaceholders("SELECT '?' , ?"); n != 1 {
		t.Errorf("placeholders inside strings must not count: %d", n)
	}
	if _, err := BindLiteral("SELECT 1", nil); err != nil {
		t.Errorf("no-arg bind: %v", err)
	}
	if _, err := BindLiteral("SELECT ?, ?", []value.Value{value.NewInt(1)}); err == nil {
		t.Error("too few args should fail")
	}
	if _, err := BindLiteral("SELECT ?", []value.Value{value.NewInt(1), value.NewInt(2)}); err == nil {
		t.Error("too many args should fail")
	}
	if _, err := value.FromGo(struct{}{}); err == nil {
		t.Error("unsupported type should fail")
	}
}

// The satellite regression for the literal-substitution escaping path:
// argument values containing single quotes, question marks and
// backslashes must splice into the text as exact SQL literals, and '?'
// inside comments and quoted identifiers must not count as placeholders.
func TestBindLiteralEscaping(t *testing.T) {
	got, err := BindLiteral("SELECT ? AS a, ? AS b", []value.Value{
		value.NewText("O'Brien?"),
		value.NewText(`back\slash'`),
	})
	if err != nil {
		t.Fatal(err)
	}
	want := `SELECT 'O''Brien?' AS a, 'back\slash''' AS b`
	if got != want {
		t.Errorf("bound text:\n got %q\nwant %q", got, want)
	}

	// The substituted text must survive a round trip through the engine
	// with the values intact.
	db := openDB(t)
	if _, err := db.Exec("CREATE TABLE q (a VARCHAR, b VARCHAR)"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("INSERT INTO q VALUES (?, ?)", "O'Brien?", `back\slash'`); err != nil {
		t.Fatal(err)
	}
	var a, b string
	if err := db.QueryRow("SELECT a, b FROM q WHERE a = ?", "O'Brien?").Scan(&a, &b); err != nil {
		t.Fatal(err)
	}
	if a != "O'Brien?" || b != `back\slash'` {
		t.Errorf("round trip: %q %q", a, b)
	}
}

func TestPlaceholderScannerSkipsCommentsAndIdents(t *testing.T) {
	cases := []struct {
		query string
		want  int
	}{
		{"SELECT ? -- is this a ? placeholder\n, ?", 2},
		{"SELECT ? /* not ? here */ , ?", 2},
		{`SELECT "a?b" FROM t WHERE x = ?`, 1},
		{"SELECT 'it''s ?' , ?", 1},
	}
	for _, c := range cases {
		n, err := CountPlaceholders(c.query)
		if err != nil {
			t.Errorf("%q: %v", c.query, err)
			continue
		}
		if n != c.want {
			t.Errorf("%q: counted %d placeholders, want %d", c.query, n, c.want)
		}
	}
	if _, err := CountPlaceholders("SELECT 'unterminated"); err == nil {
		t.Error("unterminated literal should fail")
	}
}

func TestDriverDBAccessorAndModeSwitch(t *testing.T) {
	d := &Driver{}
	conn, err := d.Open("accessor_test")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	inner := d.DB("accessor_test")
	if inner == nil {
		t.Fatal("DB accessor")
	}
	// switch the shared instance to rewrite mode; queries still work
	st, err := conn.Prepare("SELECT 1 + 1")
	if err != nil {
		t.Fatal(err)
	}
	rows, err := st.(interface {
		Query([]driver.Value) (driver.Rows, error)
	}).Query(nil)
	if err != nil {
		t.Fatal(err)
	}
	dest := make([]driver.Value, 1)
	if err := rows.Next(dest); err != nil {
		t.Fatal(err)
	}
	if dest[0].(int64) != 2 {
		t.Errorf("result: %v", dest[0])
	}
	if err := rows.Next(dest); err == nil {
		t.Error("expected EOF")
	}
	if d.DB("never_opened") != nil {
		t.Error("unknown name should be nil")
	}
}

func TestResultLastInsertIdUnsupported(t *testing.T) {
	db := openDB(t)
	if _, err := db.Exec("CREATE TABLE t (a INT)"); err != nil {
		t.Fatal(err)
	}
	res, err := db.Exec("INSERT INTO t VALUES (1)")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := res.LastInsertId(); err == nil {
		t.Error("LastInsertId should be unsupported")
	}
}

func TestDateRoundTripThroughDriver(t *testing.T) {
	db := openDB(t)
	if _, err := db.Exec("CREATE TABLE d (x DATE)"); err != nil {
		t.Fatal(err)
	}
	in := time.Date(2001, time.October, 31, 15, 4, 5, 0, time.UTC) // time part dropped
	if _, err := db.Exec("INSERT INTO d VALUES (?)", in); err != nil {
		t.Fatal(err)
	}
	var out time.Time
	if err := db.QueryRow("SELECT x FROM d").Scan(&out); err != nil {
		t.Fatal(err)
	}
	if out.Year() != 2001 || out.Month() != time.October || out.Day() != 31 {
		t.Errorf("date: %v", out)
	}
}

// Regression: the literal-substitution fallback must fire only on parse
// errors. A runtime failure halfway through a script must NOT re-run the
// script with literals spliced in — that would duplicate the side
// effects the first attempt already applied.
func TestNoFallbackReplayAfterRuntimeError(t *testing.T) {
	db := openDB(t)
	if _, err := db.Exec("CREATE TABLE t (a INT)"); err != nil {
		t.Fatal(err)
	}
	_, err := db.Exec("INSERT INTO t VALUES (?); INSERT INTO missing VALUES (1)", 5)
	if err == nil {
		t.Fatal("want runtime error for missing table")
	}
	var n int64
	if err := db.QueryRow("SELECT COUNT(*) FROM t").Scan(&n); err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("first statement executed %d times, want exactly 1", n)
	}
}

// The documented mode-switch pattern: driver connections run on the
// database's default session, so DB(name).SetMode affects them.
func TestDriverDBModeSwitchAffectsConnections(t *testing.T) {
	db, err := sql.Open("prefsql", "mode_switch_db")
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	db.SetMaxOpenConns(1)
	if _, err := db.Exec(`CREATE TABLE trips (id INT, duration INT);
		INSERT INTO trips VALUES (1, 7), (2, 13), (3, 15)`); err != nil {
		t.Fatal(err)
	}
	Default.DB("mode_switch_db").SetMode(core.ModeRewrite)
	defer Default.DB("mode_switch_db").SetMode(core.ModeNative)
	var id int64
	if err := db.QueryRow(`SELECT id FROM trips PREFERRING duration AROUND ? ORDER BY id`, 14).Scan(&id); err != nil {
		t.Fatal(err)
	}
	if id != 2 {
		t.Errorf("rewrite-mode id: %d", id)
	}
}
