// Package driver provides a database/sql driver for Preference SQL — the
// Go analogue of the paper's "Preference ODBC/JDBC driver" (§3.1): a
// standard driver API placed in front of the Preference SQL optimizer so
// existing applications keep their database/sql code and gain the
// PREFERRING / GROUPING / BUT ONLY clauses for free. Plain SQL passes
// through to the engine without noticeable overhead, preference queries go
// through the preference layer.
//
// Usage:
//
//	import (
//	    "database/sql"
//	    _ "repro/driver"
//	)
//	db, _ := sql.Open("prefsql", "mydb")      // named shared instance
//	db2, _ := sql.Open("prefsql", ":memory:") // private instance
//
// Positional '?' (or '$n') placeholders are real bind parameters: the
// statement is parsed once with ast.Param placeholder nodes, arguments
// travel out-of-band, and a prepared statement re-executes its cached
// plan across distinct argument values. Statements the Preference SQL
// grammar cannot parameterize fall back to literal substitution (see
// BindLiteral) so no previously-working query breaks.
//
// The driver implements QueryerContext / ExecerContext /
// StmtQueryContext / StmtExecContext: context cancellation propagates
// into the engine and stops in-flight scans.
package driver

import (
	"context"
	"database/sql"
	"database/sql/driver"
	"errors"
	"fmt"
	"io"
	"sync"

	"repro/internal/core"
	"repro/internal/lexer"
	"repro/internal/parser"
	"repro/internal/value"
)

func init() {
	sql.Register("prefsql", Default)
}

// Default is the driver instance registered under the name "prefsql".
var Default = &Driver{}

// Driver implements driver.Driver. Data source names select a shared
// named in-memory database; the special name ":memory:" yields a fresh
// private database per Open call.
type Driver struct {
	mu  sync.Mutex
	dbs map[string]*core.DB
}

// Open implements driver.Driver. Connections share the database's
// default session: database/sql treats pooled connections as fungible,
// and the default session is what DB(name).SetMode configures — the
// documented way to switch a driver-served instance between native and
// rewrite execution.
func (d *Driver) Open(name string) (driver.Conn, error) {
	if name == ":memory:" {
		db := core.Open()
		return &conn{db: db, sess: db.DefaultSession()}, nil
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.dbs == nil {
		d.dbs = map[string]*core.DB{}
	}
	db, ok := d.dbs[name]
	if !ok {
		db = core.Open()
		d.dbs[name] = db
	}
	return &conn{db: db, sess: db.DefaultSession()}, nil
}

// DB exposes the named shared instance so tests and embedders can reach
// the underlying preference database (e.g. to switch execution modes).
func (d *Driver) DB(name string) *core.DB {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.dbs[name]
}

type conn struct {
	db   *core.DB
	sess *core.Session
}

// Prepare implements driver.Conn: the statement parses once (placeholder
// nodes included) and every execution re-binds fresh arguments; a plain
// single SELECT additionally caches its plan. Statements whose
// placeholders sit where the grammar cannot carry a parameter keep the
// literal-substitution fallback.
func (c *conn) Prepare(query string) (driver.Stmt, error) {
	prep, err := c.db.Prepare(query)
	if err != nil {
		// Parse failed. If the text carries placeholders, keep it as a
		// literal-substitution statement — binding may produce a parseable
		// text; if not, the substituted parse error surfaces at execution.
		n, cerr := CountPlaceholders(query)
		if cerr != nil || n == 0 {
			return nil, err
		}
		return &stmt{conn: c, query: query, numInput: n}, nil
	}
	return &stmt{conn: c, query: query, prep: prep, numInput: prep.NumParams}, nil
}

// PrepareContext implements driver.ConnPrepareContext (parsing is
// in-memory and quick; the context is not consulted).
func (c *conn) PrepareContext(_ context.Context, query string) (driver.Stmt, error) {
	return c.Prepare(query)
}

// Close implements driver.Conn (in-memory: nothing to release).
func (c *conn) Close() error { return nil }

// Begin implements driver.Conn. The engine executes statements atomically
// but has no multi-statement transactions; Begin returns a no-op Tx so
// database/sql code using transactions still runs.
func (c *conn) Begin() (driver.Tx, error) { return noopTx{}, nil }

type noopTx struct{}

func (noopTx) Commit() error   { return nil }
func (noopTx) Rollback() error { return nil }

// isParseError reports whether err happened while lexing/parsing — i.e.
// before any statement executed.
func isParseError(err error) bool {
	var pe *parser.Error
	var le *lexer.Error
	return errors.As(err, &pe) || errors.As(err, &le)
}

// run executes query with real bind arguments, falling back to literal
// substitution when the parameterized form does not parse. The fallback
// fires ONLY on parse errors: parsing happens before any statement runs,
// so retrying is side-effect free — a runtime failure halfway through a
// script must surface as-is, never re-run with literals spliced in.
func (c *conn) run(ctx context.Context, query string, vals []value.Value) (*core.Result, error) {
	res, err := c.sess.ExecValues(ctx, query, vals)
	if err == nil || len(vals) == 0 || !isParseError(err) {
		return res, err
	}
	sub, serr := BindLiteral(query, vals)
	if serr != nil {
		return nil, err // surface the parameterized error, it names the real problem
	}
	res, serr = c.sess.ExecValues(ctx, sub, nil)
	if serr != nil {
		return nil, err
	}
	return res, nil
}

// QueryContext implements driver.QueryerContext: the one-shot query path,
// no Prepare round trip.
func (c *conn) QueryContext(ctx context.Context, query string, named []driver.NamedValue) (driver.Rows, error) {
	vals, err := namedToValues(named)
	if err != nil {
		return nil, err
	}
	res, err := c.run(ctx, query, vals)
	if err != nil {
		return nil, err
	}
	return &rows{res: res}, nil
}

// ExecContext implements driver.ExecerContext.
func (c *conn) ExecContext(ctx context.Context, query string, named []driver.NamedValue) (driver.Result, error) {
	vals, err := namedToValues(named)
	if err != nil {
		return nil, err
	}
	res, err := c.run(ctx, query, vals)
	if err != nil {
		return nil, err
	}
	return result{affected: int64(res.Affected)}, nil
}

type stmt struct {
	conn     *conn
	query    string
	prep     *core.Prepared // nil → literal-substitution fallback
	numInput int
}

// Close implements driver.Stmt.
func (s *stmt) Close() error { return nil }

// NumInput implements driver.Stmt.
func (s *stmt) NumInput() int { return s.numInput }

func (s *stmt) exec(ctx context.Context, vals []value.Value) (*core.Result, error) {
	if s.prep != nil {
		res, _, err := s.conn.sess.ExecPreparedArgs(ctx, s.prep, vals)
		return res, err
	}
	sqlText, err := BindLiteral(s.query, vals)
	if err != nil {
		return nil, err
	}
	return s.conn.sess.ExecValues(ctx, sqlText, nil)
}

// Exec implements driver.Stmt.
func (s *stmt) Exec(args []driver.Value) (driver.Result, error) {
	return s.execCtx(context.Background(), args)
}

// ExecContext implements driver.StmtExecContext.
func (s *stmt) ExecContext(ctx context.Context, named []driver.NamedValue) (driver.Result, error) {
	vals, err := namedToValues(named)
	if err != nil {
		return nil, err
	}
	res, err := s.exec(ctx, vals)
	if err != nil {
		return nil, err
	}
	return result{affected: int64(res.Affected)}, nil
}

func (s *stmt) execCtx(ctx context.Context, args []driver.Value) (driver.Result, error) {
	vals, err := driverToValues(args)
	if err != nil {
		return nil, err
	}
	res, err := s.exec(ctx, vals)
	if err != nil {
		return nil, err
	}
	return result{affected: int64(res.Affected)}, nil
}

// Query implements driver.Stmt.
func (s *stmt) Query(args []driver.Value) (driver.Rows, error) {
	vals, err := driverToValues(args)
	if err != nil {
		return nil, err
	}
	res, err := s.exec(context.Background(), vals)
	if err != nil {
		return nil, err
	}
	return &rows{res: res}, nil
}

// QueryContext implements driver.StmtQueryContext.
func (s *stmt) QueryContext(ctx context.Context, named []driver.NamedValue) (driver.Rows, error) {
	vals, err := namedToValues(named)
	if err != nil {
		return nil, err
	}
	res, err := s.exec(ctx, vals)
	if err != nil {
		return nil, err
	}
	return &rows{res: res}, nil
}

type result struct {
	affected int64
}

// LastInsertId implements driver.Result; the engine has no rowids.
func (result) LastInsertId() (int64, error) {
	return 0, fmt.Errorf("prefsql: LastInsertId is not supported")
}

// RowsAffected implements driver.Result.
func (r result) RowsAffected() (int64, error) { return r.affected, nil }

type rows struct {
	res *core.Result
	pos int
}

// Columns implements driver.Rows.
func (r *rows) Columns() []string { return r.res.Columns }

// Close implements driver.Rows.
func (r *rows) Close() error { return nil }

// Next implements driver.Rows.
func (r *rows) Next(dest []driver.Value) error {
	if r.pos >= len(r.res.Rows) {
		return io.EOF
	}
	row := r.res.Rows[r.pos]
	r.pos++
	for i, v := range row {
		dest[i] = toDriverValue(v)
	}
	return nil
}

// ---------------------------------------------------------------------------
// Value conversions
// ---------------------------------------------------------------------------

func toDriverValue(v value.Value) driver.Value {
	switch v.K {
	case value.Null:
		return nil
	case value.Int:
		return v.I
	case value.Float:
		return v.F
	case value.Text:
		return v.S
	case value.Bool:
		return v.I != 0
	case value.Date:
		return v.Time()
	}
	return nil
}

// namedToValues converts database/sql's argument form. Only positional
// (ordinal) arguments are supported — the SQL dialect has no named
// parameters.
func namedToValues(named []driver.NamedValue) ([]value.Value, error) {
	if len(named) == 0 {
		return nil, nil
	}
	out := make([]value.Value, len(named))
	for _, nv := range named {
		if nv.Name != "" {
			return nil, fmt.Errorf("prefsql: named parameter %q is not supported (use positional '?')", nv.Name)
		}
		if nv.Ordinal < 1 || nv.Ordinal > len(named) {
			return nil, fmt.Errorf("prefsql: argument ordinal %d out of range", nv.Ordinal)
		}
		v, err := value.FromGo(nv.Value)
		if err != nil {
			return nil, fmt.Errorf("prefsql: %w", err)
		}
		out[nv.Ordinal-1] = v
	}
	return out, nil
}

func driverToValues(args []driver.Value) ([]value.Value, error) {
	if len(args) == 0 {
		return nil, nil
	}
	out := make([]value.Value, len(args))
	for i, a := range args {
		v, err := value.FromGo(a)
		if err != nil {
			return nil, fmt.Errorf("prefsql: %w", err)
		}
		out[i] = v
	}
	return out, nil
}
