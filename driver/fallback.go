package driver

import (
	"fmt"
	"strings"

	"repro/internal/value"
)

// This file is the literal-substitution fallback: the pre-bind-parameter
// way of answering placeholders, kept only for statements the Preference
// SQL grammar cannot carry an ast.Param in (real bind parameters cover
// every expression position plus the outermost LIMIT/OFFSET). It splices
// argument values into the query text as SQL literals, which is safe
// only because the quoting below mirrors the lexer exactly:
//
//   - string literals quote with '...' and escape embedded quotes by
//     doubling ('') — there are no backslash escapes in this dialect, so a
//     backslash in a value passes through untouched and must NOT be
//     escaped (doing so would change the value);
//   - '?' characters inside string literals, quoted "identifiers", line
//     comments (--) and block comments (/* */) are text, not placeholders.
//
// Prefer real parameters: they keep one plan per SQL text and cannot be
// broken by quoting.

// scanPlaceholders walks query, invoking emit for every text region and
// placeholder for every '?' outside strings, quoted identifiers and
// comments. It is the single scanner behind CountPlaceholders and
// BindLiteral, so the two can never disagree on what counts as a
// placeholder.
func scanPlaceholders(query string, emit func(s string), placeholder func() error) error {
	flush := func(from, to int) {
		if emit != nil && to > from {
			emit(query[from:to])
		}
	}
	start := 0
	i := 0
	for i < len(query) {
		switch c := query[i]; c {
		case '\'', '"':
			// String literal or quoted identifier; a doubled quote is an
			// escaped quote, matching the lexer.
			j, terminated := i+1, false
			for j < len(query) {
				if query[j] == c {
					if j+1 < len(query) && query[j+1] == c {
						j += 2
						continue
					}
					j++
					terminated = true
					break
				}
				j++
			}
			if !terminated {
				if c == '\'' {
					return fmt.Errorf("prefsql: unterminated string literal in query")
				}
				return fmt.Errorf("prefsql: unterminated quoted identifier in query")
			}
			i = j
		case '-':
			if i+1 < len(query) && query[i+1] == '-' {
				for i < len(query) && query[i] != '\n' {
					i++
				}
			} else {
				i++
			}
		case '/':
			if i+1 < len(query) && query[i+1] == '*' {
				end := strings.Index(query[i+2:], "*/")
				if end < 0 {
					i = len(query)
				} else {
					i += 2 + end + 2
				}
			} else {
				i++
			}
		case '?':
			flush(start, i)
			if err := placeholder(); err != nil {
				return err
			}
			i++
			start = i
		default:
			i++
		}
	}
	flush(start, len(query))
	return nil
}

// CountPlaceholders counts '?' placeholders outside string literals,
// quoted identifiers and comments.
func CountPlaceholders(query string) (int, error) {
	n := 0
	err := scanPlaceholders(query, nil, func() error { n++; return nil })
	if err != nil {
		return 0, err
	}
	return n, nil
}

// BindLiteral substitutes positional args for '?' placeholders as SQL
// literals — the documented fallback for statements that cannot carry
// real bind parameters. Values render through value.Value.SQL, which
// escapes quotes by doubling; see the package comment above for why no
// other escaping is applied.
func BindLiteral(query string, args []value.Value) (string, error) {
	var b strings.Builder
	argIdx := 0
	err := scanPlaceholders(query,
		func(s string) { b.WriteString(s) },
		func() error {
			if argIdx >= len(args) {
				return fmt.Errorf("prefsql: not enough arguments for placeholders")
			}
			b.WriteString(args[argIdx].SQL())
			argIdx++
			return nil
		})
	if err != nil {
		return "", err
	}
	if argIdx != len(args) {
		return "", fmt.Errorf("prefsql: %d arguments for %d placeholders", len(args), argIdx)
	}
	return b.String(), nil
}
